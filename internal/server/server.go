// Package server implements knowd, the knowledge-serving daemon: an
// HTTP/JSON front end over the repository's model-checking stack. Clients
// open sessions against experiment systems (muddy-n, the coordinated
// attack, R2-D2, the scenario fault regimes), evaluate formula batches on
// the session's current model, and drive public-announcement chains whose
// warm incremental state (quotient block maps, seeded re-refinement) lives
// server-side between requests.
//
// The robustness surface is deliberately explicit, because the daemon is
// chaos-tested by the repository's own fault engine:
//
//   - admission control: a bounded compute-slot semaphore sheds overload
//     with 429 + Retry-After instead of queueing without bound;
//   - idempotency: requests carrying an Idempotency-Key execute once and
//     replay stored bytes to duplicates (single flight), so a retried
//     announce never advances a chain twice and a retried eval never
//     recomputes;
//   - per-session serialization: chain links cannot interleave;
//   - panic recovery: a poisoned request becomes a 500, the daemon lives;
//   - graceful drain: Shutdown stops intake, finishes in-flight work and
//     persists session chains (with their quotient block maps) to disk.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/logic"
)

// Config carries the daemon's knobs; zero values mean defaults.
type Config struct {
	// Seed parameterizes scenario fault sampling for sessions opened
	// without an explicit seed. Default 1.
	Seed int64
	// Workers caps eval-batch workers per request; <=0 means one per core.
	Workers int
	// Queue is the number of concurrent compute slots before load shedding
	// kicks in. Default 64.
	Queue int
	// DedupeWindow is how many idempotency keys the server remembers.
	// Default 256.
	DedupeWindow int
	// SessionTTL evicts sessions idle longer than this. Default 15m.
	SessionTTL time.Duration
	// StateDir, when non-empty, is where Shutdown persists session state
	// (sessions.json) and LoadSessions restores it from.
	StateDir string
	// WriteThrough, with StateDir set, persists sessions.json after every
	// successful mutating request instead of only on drain, so a session
	// chain survives a crash (SIGKILL) that never reaches Shutdown. The
	// window of loss is exactly the in-flight request, which the announce
	// link precondition makes safe to retry.
	WriteThrough bool
	// BootID, when non-empty, names this process incarnation. It is
	// advertised on /healthz as the Knowd-Boot-Id header and woven into
	// session ids ("s<boot>-<n>"), so an id minted by an earlier
	// incarnation that died on the same address can never alias a fresh
	// one. Routers key both crash detection and the safety of their
	// session mappings off it; in-process tests leave it empty and keep
	// the bare "s<n>" ids.
	BootID string
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.DedupeWindow <= 0 {
		c.DedupeWindow = 256
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 15 * time.Minute
	}
	return c
}

// Wire types, shared with internal/client.

// OpenRequest opens a session. Seed 0 inherits the server's seed.
type OpenRequest struct {
	System string `json:"system"`
	Seed   int64  `json:"seed,omitempty"`
}

// SessionState describes a session's current chain link.
type SessionState struct {
	Session  string `json:"session"`
	System   string `json:"system"`
	Agents   int    `json:"agents"`
	Link     int    `json:"link"`     // announcements applied so far
	Worlds   int    `json:"worlds"`   // worlds of the current (restricted) model
	Quotient int    `json:"quotient"` // worlds evaluation actually runs on
	Marked   int    `json:"marked"`   // distinguished world, -1 if eliminated
}

// EvalRequest evaluates a formula batch on a session's current model.
// Workers <= 0 uses the server default; positive counts are clamped to the
// server's cap. Worlds asks for the full denotation world lists.
type EvalRequest struct {
	Formulas []string `json:"formulas"`
	Workers  int      `json:"workers,omitempty"`
	Worlds   bool     `json:"worlds,omitempty"`
}

// Verdict is one formula's result. Marked is nil when the session has no
// surviving marked world to judge at.
type Verdict struct {
	Formula string `json:"formula"`
	Count   int    `json:"count"`
	Marked  *bool  `json:"marked"`
	Worlds  []int  `json:"worlds,omitempty"`
}

// EvalResponse carries the batch's verdicts; Link identifies the chain
// link they were computed at.
type EvalResponse struct {
	Session  string    `json:"session"`
	Link     int       `json:"link"`
	Verdicts []Verdict `json:"verdicts"`
}

// AnnounceRequest publicly announces a formula on a session. Link, when
// non-nil, is a chain-position precondition that makes the announce
// exactly-once across crash-restarts, where the in-memory dedupe window
// cannot help: at link == len(chain) the announcement applies normally; at
// link == len(chain)-1 with the identical formula the request is a retry
// of an already-applied announce (the response was lost) and replays the
// current state without advancing the chain; anything else is a 409.
type AnnounceRequest struct {
	Formula string `json:"formula"`
	Link    *int   `json:"link,omitempty"`
}

// Stats is the daemon's counter snapshot.
type Stats struct {
	Sessions   int   `json:"sessions"`
	Opened     int64 `json:"opened"`
	Closed     int64 `json:"closed"`
	Evicted    int64 `json:"evicted"`
	Restored   int64 `json:"restored"`
	Evals      int64 `json:"evals"`
	Announces  int64 `json:"announces"`
	Replays    int64 `json:"announce_replays"`
	DedupeHits int64 `json:"dedupe_hits"`
	Shed       int64 `json:"shed"`
	Panics     int64 `json:"panics"`
}

type errorBody struct {
	Error string `json:"error"`
}

// maxBatch bounds one eval request's formula count.
const maxBatch = 1024

// Server is the knowd daemon state. Create with New; serve via Serve or
// mount Handler on a test server.
type Server struct {
	cfg  Config
	mux  *http.ServeMux
	http *http.Server
	now  func() time.Time // injectable for eviction tests
	// tick is the janitor's tick source; the default wraps time.NewTicker.
	// Tests replace it (together with now) to drive TTL eviction from a
	// virtual clock with zero wall-clock sleeps — the returned stop func is
	// called when the janitor exits.
	tick func(d time.Duration) (<-chan time.Time, func())

	mu       sync.Mutex
	sessions map[string]*session
	nextID   int64

	dedupe   *Deduper
	sem      chan struct{}
	draining atomic.Bool

	// persistMu serializes write-through snapshots so a slow writer can
	// never clobber sessions.json with an older snapshot than a fast one.
	persistMu sync.Mutex

	janitorOnce sync.Once
	janitorStop chan struct{}

	opened, closed, evicted, restored atomic.Int64
	evals, announces, replays         atomic.Int64
	shed, panics                      atomic.Int64
}

// New builds a daemon from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg: cfg,
		now: time.Now,
		tick: func(d time.Duration) (<-chan time.Time, func()) {
			t := time.NewTicker(d)
			return t.C, t.Stop
		},
		sessions:    make(map[string]*session),
		sem:         make(chan struct{}, cfg.Queue),
		janitorStop: make(chan struct{}),
	}
	s.dedupe = NewDeduper(cfg.DedupeWindow, s.logf, func() { s.panics.Add(1) })
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.withRecover(s.handleHealthz))
	mux.HandleFunc("GET /v1/systems", s.withRecover(s.handleSystems))
	mux.HandleFunc("GET /v1/stats", s.withRecover(s.handleStats))
	mux.HandleFunc("GET /v1/sessions", s.withRecover(s.handleList))
	mux.HandleFunc("GET /v1/sessions/{id}", s.withRecover(s.handleGet))
	mux.HandleFunc("POST /v1/sessions", s.compute(s.handleOpen))
	mux.HandleFunc("POST /v1/sessions/{id}/eval", s.compute(s.handleEval))
	mux.HandleFunc("POST /v1/sessions/{id}/announce", s.compute(s.handleAnnounce))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.withRecover(s.handleClose))
	s.mux = mux
	s.http = &http.Server{Handler: mux}
	return s
}

// Handler exposes the daemon's routes (for tests and custom servers).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown. The idle-session janitor
// runs for the lifetime of the daemon.
func (s *Server) Serve(l net.Listener) error {
	s.startJanitor()
	err := s.http.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains the daemon: new compute is refused with 503, in-flight
// requests finish (bounded by ctx), and — when StateDir is set — every
// surviving session chain is persisted for the next process to restore.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.http.Shutdown(ctx)
	if s.cfg.StateDir != "" {
		if _, serr := s.SaveSessions(); serr != nil && err == nil {
			err = serr
		}
	}
	s.janitorOnce.Do(func() {}) // mark started so stop is safe either way
	select {
	case <-s.janitorStop:
	default:
		close(s.janitorStop)
	}
	return err
}

func (s *Server) startJanitor() {
	s.janitorOnce.Do(func() {
		go func() {
			c, stop := s.tick(s.cfg.SessionTTL / 4)
			defer stop()
			for {
				select {
				case <-s.janitorStop:
					return
				case <-c:
					s.evictIdle(s.now())
				}
			}
		}()
	})
}

// evictIdle drops sessions idle longer than SessionTTL.
func (s *Server) evictIdle(now time.Time) {
	s.mu.Lock()
	dropped := 0
	for id, ss := range s.sessions {
		if now.Sub(ss.lastUsed) > s.cfg.SessionTTL {
			delete(s.sessions, id)
			s.evicted.Add(1)
			dropped++
			s.logf("evicted idle session %s (%s)", id, ss.ld.spec)
		}
	}
	s.mu.Unlock()
	if dropped > 0 {
		// Evictions are mutations too: without a fresh snapshot a restart
		// would resurrect sessions the TTL already reclaimed.
		s.persistWriteThrough()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Middleware.

// compute wraps the expensive mutating endpoints: panic recovery outside,
// then idempotency dedupe (a replayed duplicate never needs a slot), then
// admission control, then the handler.
func (s *Server) compute(h http.HandlerFunc) http.HandlerFunc {
	return s.withRecover(s.withDedupe(s.withAdmit(h)))
}

func (s *Server) withRecover(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.panics.Add(1)
				s.logf("panic serving %s %s: %v", r.Method, r.URL.Path, p)
				writeErr(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", p))
			}
		}()
		h(w, r)
	}
}

// withAdmit implements load shedding: compute runs only while a slot is
// free; otherwise the request is refused immediately with Retry-After so
// a well-behaved client backs off instead of piling onto the queue.
func (s *Server) withAdmit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable, "draining")
			return
		}
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
			h(w, r)
		default:
			s.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, "over capacity")
		}
	}
}

// withDedupe gives Idempotency-Key semantics to the wrapped handler via
// the server's Deduper (see dedupe.go for the full contract).
func (s *Server) withDedupe(h http.HandlerFunc) http.HandlerFunc {
	return s.dedupe.Wrap(h)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg})
}

// Handlers.

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.cfg.BootID != "" {
		w.Header().Set("Knowd-Boot-Id", s.cfg.BootID)
	}
	if s.draining.Load() {
		// 503, not 200-with-a-sad-body: a health checker keys off the status
		// code, and a draining daemon must stop receiving routed traffic
		// before its listener actually closes.
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleSystems(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Systems(s.cfg.Seed))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

// StatsSnapshot returns the current counter values.
func (s *Server) StatsSnapshot() Stats {
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	return Stats{
		Sessions:   n,
		Opened:     s.opened.Load(),
		Closed:     s.closed.Load(),
		Evicted:    s.evicted.Load(),
		Restored:   s.restored.Load(),
		Evals:      s.evals.Load(),
		Announces:  s.announces.Load(),
		Replays:    s.replays.Load(),
		DedupeHits: s.dedupe.Hits(),
		Shed:       s.shed.Load(),
		Panics:     s.panics.Load(),
	}
}

func (s *Server) handleOpen(w http.ResponseWriter, r *http.Request) {
	var req OpenRequest
	if !decodeBody(w, r, &req) {
		return
	}
	seed := req.Seed
	if seed == 0 {
		seed = s.cfg.Seed
	}
	ld, err := loadSystem(req.System, seed)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	ss := &session{seed: seed, ld: ld, lastUsed: s.now()}
	s.mu.Lock()
	s.nextID++
	if s.cfg.BootID != "" {
		ss.id = "s" + s.cfg.BootID + "-" + strconv.FormatInt(s.nextID, 10)
	} else {
		ss.id = "s" + strconv.FormatInt(s.nextID, 10)
	}
	s.sessions[ss.id] = ss
	s.mu.Unlock()
	s.opened.Add(1)
	s.persistWriteThrough()
	writeJSON(w, http.StatusCreated, s.stateOf(ss))
}

// persistWriteThrough snapshots session state to disk after a mutation
// when write-through persistence is on. Failures are logged, not fatal:
// the daemon keeps serving from memory and the next mutation retries.
func (s *Server) persistWriteThrough() {
	if !s.cfg.WriteThrough || s.cfg.StateDir == "" {
		return
	}
	if _, err := s.SaveSessions(); err != nil {
		s.logf("write-through persistence failed: %v", err)
	}
}

// stateOf snapshots a session's chain state; callers hold ss.mu or have
// exclusive access.
func (s *Server) stateOf(ss *session) SessionState {
	return SessionState{
		Session:  ss.id,
		System:   ss.ld.spec,
		Agents:   ss.ld.agents,
		Link:     len(ss.announced),
		Worlds:   ss.ld.view.NumWorlds(),
		Quotient: ss.ld.view.QuotientWorlds(),
		Marked:   ss.ld.marked,
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	slices.SortFunc(ids, func(a, b string) int {
		na, _ := strconv.Atoi(a[1:])
		nb, _ := strconv.Atoi(b[1:])
		return na - nb
	})
	out := make([]SessionState, 0, len(ids))
	for _, id := range ids {
		ss := s.sessions[id]
		ss.mu.Lock()
		out = append(out, s.stateOf(ss))
		ss.mu.Unlock()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) session(id string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

// handleGet returns one session's current chain state — the read-only
// counterpart of the session list, cheap enough for a router to hedge to a
// replica. It deliberately does not touch the session: a health probe or a
// hedged read must not keep an otherwise idle session alive.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	ss := s.session(r.PathValue("id"))
	if ss == nil {
		writeErr(w, http.StatusNotFound, "no such session")
		return
	}
	ss.mu.Lock()
	st := s.stateOf(ss)
	ss.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	ss := s.session(r.PathValue("id"))
	if ss == nil {
		writeErr(w, http.StatusNotFound, "no such session")
		return
	}
	var req EvalRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Formulas) == 0 {
		writeErr(w, http.StatusBadRequest, "empty formula batch")
		return
	}
	if len(req.Formulas) > maxBatch {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("batch of %d formulas exceeds the %d cap", len(req.Formulas), maxBatch))
		return
	}
	fs := make([]logic.Formula, len(req.Formulas))
	for i, src := range req.Formulas {
		f, err := logic.Parse(src)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("formula %d: %v", i, err))
			return
		}
		fs[i] = f
	}

	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.touch(s.now())
	sets, err := ss.evalBatch(r.Context(), fs, s.evalWorkers(req.Workers))
	if err != nil {
		if r.Context().Err() != nil {
			return // client gone; nobody is listening
		}
		writeErr(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	resp := EvalResponse{
		Session:  ss.id,
		Link:     len(ss.announced),
		Verdicts: make([]Verdict, len(fs)),
	}
	for i, set := range sets {
		v := Verdict{Formula: req.Formulas[i], Count: set.Count()}
		if ss.ld.marked >= 0 {
			holds := set.Contains(ss.ld.marked)
			v.Marked = &holds
		}
		if req.Worlds {
			v.Worlds = set.Elements()
		}
		resp.Verdicts[i] = v
	}
	s.evals.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// evalWorkers maps a request's worker ask onto the server's cap.
func (s *Server) evalWorkers(req int) int {
	cap := s.cfg.Workers
	if cap <= 0 {
		cap = runtime.GOMAXPROCS(0)
	}
	if req <= 0 || req > cap {
		return cap
	}
	return req
}

func (s *Server) handleAnnounce(w http.ResponseWriter, r *http.Request) {
	ss := s.session(r.PathValue("id"))
	if ss == nil {
		writeErr(w, http.StatusNotFound, "no such session")
		return
	}
	var req AnnounceRequest
	if !decodeBody(w, r, &req) {
		return
	}
	f, err := logic.Parse(req.Formula)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	ss.mu.Lock()
	ss.touch(s.now())
	if req.Link != nil {
		switch at := len(ss.announced); {
		case *req.Link == at:
			// Precondition holds: apply below.
		case *req.Link == at-1 && ss.announced[at-1] == req.Formula:
			// A retry of the announce that created the current link: the
			// original executed but its response was lost (severed wire,
			// daemon crash after persisting). Replay the state instead of
			// advancing the chain a second time.
			st := s.stateOf(ss)
			ss.mu.Unlock()
			s.replays.Add(1)
			writeJSON(w, http.StatusOK, st)
			return
		default:
			ss.mu.Unlock()
			writeErr(w, http.StatusConflict,
				fmt.Sprintf("link precondition %d does not match chain at link %d", *req.Link, at))
			return
		}
	}
	if err := ss.announce(req.Formula, f); err != nil {
		ss.mu.Unlock()
		writeErr(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	st := s.stateOf(ss)
	ss.mu.Unlock()
	s.announces.Add(1)
	s.persistWriteThrough()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "no such session")
		return
	}
	s.closed.Add(1)
	s.persistWriteThrough()
	writeJSON(w, http.StatusOK, map[string]string{"closed": id})
}

// decodeBody decodes a bounded JSON request body, reporting malformed
// input as 400. Returns false when a response was already written.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

// Session persistence: the drain path of the tentpole. Chains are stored
// as their announcement sources plus the expected model shape; restore
// replays the sources through the same incremental machinery and verifies
// the rebuilt chain matches world for world before trusting it.

type persistedSession struct {
	ID        string   `json:"id"`
	System    string   `json:"system"`
	Seed      int64    `json:"seed"`
	Announced []string `json:"announced"`
	Marked    int      `json:"marked"`
	Worlds    int      `json:"worlds"`
	Quotient  int      `json:"quotient"`
	Blocks    []int    `json:"blocks,omitempty"`
}

type stateFile struct {
	Sessions []persistedSession `json:"sessions"`
}

// SaveSessions writes every live session's chain record to
// StateDir/sessions.json and returns the path written. Concurrent calls
// are serialized, and each writes the state current at its own write time,
// so the file on disk is always the newest snapshot taken.
func (s *Server) SaveSessions() (string, error) {
	if s.cfg.StateDir == "" {
		return "", fmt.Errorf("server: no StateDir configured")
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	s.mu.Lock()
	var sf stateFile
	for _, ss := range s.sessions {
		ss.mu.Lock()
		sf.Sessions = append(sf.Sessions, persistedSession{
			ID:        ss.id,
			System:    ss.ld.spec,
			Seed:      ss.seed,
			Announced: slices.Clone(ss.announced),
			Marked:    ss.ld.marked,
			Worlds:    ss.ld.view.NumWorlds(),
			Quotient:  ss.ld.view.QuotientWorlds(),
			Blocks:    slices.Clone(ss.ld.view.Blocks()),
		})
		ss.mu.Unlock()
	}
	s.mu.Unlock()
	slices.SortFunc(sf.Sessions, func(a, b persistedSession) int {
		na, _ := strconv.Atoi(a.ID[1:])
		nb, _ := strconv.Atoi(b.ID[1:])
		return na - nb
	})
	if err := os.MkdirAll(s.cfg.StateDir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(s.cfg.StateDir, "sessions.json")
	data, err := json.MarshalIndent(sf, "", "  ")
	if err != nil {
		return "", err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", err
	}
	s.logf("persisted %d sessions to %s", len(sf.Sessions), path)
	return path, nil
}

// LoadSessions restores sessions persisted by a previous drain. Each
// chain is rebuilt by replaying its announcements; a chain whose rebuilt
// model shape (worlds, quotient size, block map, marked world) disagrees
// with the record is skipped rather than served wrong. Returns how many
// sessions were restored. A missing state file is not an error.
func (s *Server) LoadSessions() (int, error) {
	if s.cfg.StateDir == "" {
		return 0, fmt.Errorf("server: no StateDir configured")
	}
	path := filepath.Join(s.cfg.StateDir, "sessions.json")
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var sf stateFile
	if err := json.Unmarshal(data, &sf); err != nil {
		return 0, fmt.Errorf("server: corrupt state file %s: %w", path, err)
	}
	restored := 0
	maxID := int64(0)
	for _, ps := range sf.Sessions {
		if !validSessionID(ps.ID) {
			s.logf("skipping persisted session with malformed id %q", ps.ID)
			continue
		}
		ld, err := loadSystem(ps.System, ps.Seed)
		if err != nil {
			s.logf("skipping persisted session %s: %v", ps.ID, err)
			continue
		}
		ss := &session{id: ps.ID, seed: ps.Seed, ld: ld, lastUsed: s.now()}
		if err := ss.replay(ps.Announced); err != nil {
			s.logf("skipping persisted session %s: %v", ps.ID, err)
			continue
		}
		if ss.ld.marked != ps.Marked ||
			ss.ld.view.NumWorlds() != ps.Worlds ||
			ss.ld.view.QuotientWorlds() != ps.Quotient ||
			!blocksEqual(ss.ld.view.Blocks(), ps.Blocks) {
			s.logf("skipping persisted session %s: replayed chain does not match its record", ps.ID)
			continue
		}
		s.mu.Lock()
		s.sessions[ps.ID] = ss
		s.mu.Unlock()
		if n, err := strconv.ParseInt(ps.ID[1:], 10, 64); err == nil && n > maxID {
			maxID = n
		}
		restored++
	}
	s.mu.Lock()
	if maxID > s.nextID {
		s.nextID = maxID
	}
	s.mu.Unlock()
	s.restored.Add(int64(restored))
	if restored > 0 {
		s.logf("restored %d sessions from %s", restored, path)
	}
	return restored, nil
}

// blocksEqual compares block maps, treating nil and empty as equal.
func blocksEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	return slices.Equal(a, b)
}

// validSessionID reports whether id has the server-assigned "s<digits>"
// shape. Restore refuses anything else: every ID consumer (the session
// list sort, the next-ID bump) slices off the leading byte and parses the
// rest, and a hand-edited state file must not be able to panic the daemon.
func validSessionID(id string) bool {
	if len(id) < 2 || id[0] != 's' {
		return false
	}
	body := id[1:]
	// Exactly two shapes: bare "s<n>", or the boot-fenced "s<boot>-<n>"
	// form where <boot> is a base-36 incarnation stamp.
	if i := strings.IndexByte(body, '-'); i >= 0 {
		return isBase36(body[:i]) && isDigits(body[i+1:])
	}
	return isDigits(body)
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

func isBase36(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'z') {
			return false
		}
	}
	return true
}
