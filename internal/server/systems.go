package server

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/kripke"
	"repro/internal/muddy"
	"repro/internal/protocol"
	"repro/internal/runs"
	"repro/internal/scenario"
)

// A loaded system is one experiment instantiated for a session: the
// epistemic view the announcement chain restricts, plus — for runs-based
// systems — the point model that serves temporal formulas at link zero,
// before any announcement has moved the session off the original model.
type loaded struct {
	spec   string
	desc   string
	agents int
	// view is the chain's current epistemic structure. It starts at the
	// system's quotient-for-eval view and is replaced by Restrict on every
	// announcement (the PR-4 incremental path: block maps threaded through).
	view *kripke.Quotiented
	// pm is non-nil for runs-based systems and carries the temporal
	// semantics hook; it matches view's world coordinates only at link 0.
	pm *runs.PointModel
	// marked is the distinguished real world (actual muddy assignment, best
	// attack chain run at the horizon, scenario witness point) in current
	// model coordinates; -1 once an announcement eliminates it.
	marked int
}

// Horizon/budget constants of the fixed demo systems. Small enough that a
// session opens in well under a second, rich enough that every formula
// class (K towers, C, the temporal variants) has non-trivial denotations.
const (
	attackBudget  = 4
	attackHorizon = runs.Time(10)
	r2d2Sends     = 6
	r2d2Horizon   = runs.Time(9)
	muddyMaxN     = 12
)

// SystemInfo describes one loadable system spec for GET /v1/systems.
type SystemInfo struct {
	Spec string `json:"spec"`
	Desc string `json:"desc"`
}

// Systems enumerates the specs loadSystem accepts. Scenario regimes are
// listed under the given seed (the key set is seed-independent).
func Systems(seed int64) []SystemInfo {
	out := []SystemInfo{
		{Spec: "muddy:N", Desc: fmt.Sprintf("muddy children, N children all muddy (1 <= N <= %d)", muddyMaxN)},
		{Spec: "attack", Desc: fmt.Sprintf("coordinated attack, %d-message budget, horizon %d, delivery-count announcements", attackBudget, attackHorizon)},
		{Spec: "r2d2", Desc: fmt.Sprintf("R2-D2 broadcast with spread 1, %d send times, horizon %d", r2d2Sends, r2d2Horizon)},
	}
	for _, rg := range scenario.Regimes(scenario.Params{Seed: seed}) {
		out = append(out, SystemInfo{Spec: "scenario:" + rg.Key, Desc: rg.Desc})
	}
	return out
}

// loadSystem instantiates spec. Specs are "muddy:N", "attack", "r2d2" and
// "scenario:<regime>"; seed parameterizes the scenario fault sampling and
// is ignored by the deterministic fixed systems.
func loadSystem(spec string, seed int64) (*loaded, error) {
	switch {
	case strings.HasPrefix(spec, "muddy:"):
		n, err := strconv.Atoi(spec[len("muddy:"):])
		if err != nil || n < 1 || n > muddyMaxN {
			return nil, fmt.Errorf("bad muddy spec %q: want muddy:N with 1 <= N <= %d", spec, muddyMaxN)
		}
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		p, err := muddy.New(n, all)
		if err != nil {
			return nil, err
		}
		marked, err := p.ActualWorld()
		if err != nil {
			return nil, err
		}
		return &loaded{
			spec:   spec,
			desc:   fmt.Sprintf("muddy children, %d children all muddy", n),
			agents: n,
			view:   p.Model().QuotientForEval(1),
			marked: marked,
		}, nil

	case spec == "attack":
		s, err := attack.Build(attackBudget, attackHorizon)
		if err != nil {
			return nil, err
		}
		never := func(protocol.LocalView) bool { return false }
		pm := s.Sys.Model(runs.CompleteHistoryView, s.DeliveryInterp(never, never))
		marked, err := pm.WorldOf(s.BestChainRun(), s.Sys.Horizon)
		if err != nil {
			return nil, err
		}
		return &loaded{
			spec:   spec,
			desc:   "coordinated attack over the unreliable channel",
			agents: s.Sys.N,
			view:   pm.EpistemicQuotient(1),
			pm:     pm,
			marked: marked,
		}, nil

	case spec == "r2d2":
		sys := core.R2D2Chain(r2d2Sends, r2d2Horizon)
		pm := sys.Model(runs.CompleteHistoryView, runs.Interpretation{
			"sent": runs.StablyTrue(runs.SentBy("m")),
		})
		marked, err := pm.WorldOf("s0", sys.Horizon)
		if err != nil {
			return nil, err
		}
		return &loaded{
			spec:   spec,
			desc:   "R2-D2 broadcast, one epsilon per knowledge level",
			agents: sys.N,
			view:   pm.EpistemicQuotient(1),
			pm:     pm,
			marked: marked,
		}, nil

	case strings.HasPrefix(spec, "scenario:"):
		p := scenario.Params{Seed: seed}
		rg, err := scenario.RegimeByKey(p, spec[len("scenario:"):])
		if err != nil {
			return nil, err
		}
		b, err := scenario.Build(p, rg)
		if err != nil {
			return nil, err
		}
		return &loaded{
			spec:   spec,
			desc:   rg.Desc,
			agents: b.Sys.N,
			view:   b.PM.EpistemicQuotient(1),
			pm:     b.PM,
			marked: b.PM.World(b.WitnessIdx, b.TStar),
		}, nil
	}
	return nil, fmt.Errorf("unknown system spec %q", spec)
}
