package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/simclock"
)

// TestTTLEvictionVirtualClock drives the idle-session janitor from a
// simclock virtual clock: the server's injectable now and tick source are
// both derived from the clock, the clock jumps past the TTL (the
// clock-drift regime: wall time leaps while the session sits idle), and
// the janitor evicts — with zero wall-clock sleeps anywhere in the test.
func TestTTLEvictionVirtualClock(t *testing.T) {
	clk := simclock.New(0)
	base := time.Unix(1700000000, 0)

	s, ts := newTestServer(t, Config{SessionTTL: time.Minute})
	s.now = func() time.Time { return base.Add(time.Duration(clk.Now()) * time.Second) }
	tickc := make(chan time.Time) // unbuffered: sends rendezvous with the janitor
	s.tick = func(d time.Duration) (<-chan time.Time, func()) {
		if d != 15*time.Second {
			t.Errorf("janitor tick period %v, want SessionTTL/4", d)
		}
		return tickc, func() {}
	}
	s.startJanitor()
	t.Cleanup(func() { close(s.janitorStop) })

	code, body := do(t, ts, "POST", "/v1/sessions", OpenRequest{System: "muddy:2"}, "")
	if code != http.StatusCreated {
		t.Fatalf("open: %d: %s", code, body)
	}
	sid := decode[SessionState](t, body).Session

	// The eviction ticker is simclock-driven: every 15 virtual seconds a
	// timer fires and hands the janitor one tick. Because tickc is
	// unbuffered, each Advance below returns only after the janitor has
	// accepted every tick the window contained.
	var schedule func()
	schedule = func() {
		if _, err := clk.AfterFunc(15, func() { tickc <- time.Time{}; schedule() }); err != nil {
			t.Errorf("schedule tick: %v", err)
		}
	}
	schedule()

	// 30 virtual seconds: two ticks, both before the TTL — no eviction.
	if err := clk.Advance(30); err != nil {
		t.Fatal(err)
	}
	tickc <- time.Time{} // barrier: the janitor finished the previous sweep
	if s.session(sid) == nil {
		t.Fatal("session evicted before its TTL")
	}

	// Jump the clock well past the TTL; the next tick evicts.
	if err := clk.Advance(90); err != nil {
		t.Fatal(err)
	}
	tickc <- time.Time{} // barrier again
	if s.session(sid) != nil {
		t.Fatal("idle session survived a jumped clock past its TTL")
	}
	if got := s.StatsSnapshot().Evicted; got != 1 {
		t.Fatalf("evicted counter %d, want 1", got)
	}
}

// TestHealthzDrainLifecycle pins the health surface a cluster router keys
// off: a live daemon answers healthz 200/ok, and the moment SIGTERM drain
// begins (Shutdown, here driven directly) healthz flips to 503/draining —
// before the listener closes — so routers stop sending traffic to a shard
// that is about to go away instead of discovering it via refused
// connections.
func TestHealthzDrainLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	code, body := do(t, ts, "GET", "/healthz", nil, "")
	if code != http.StatusOK {
		t.Fatalf("healthz before drain: %d: %s", code, body)
	}
	if m := decode[map[string]string](t, body); m["status"] != "ok" {
		t.Fatalf("healthz body before drain: %v", m)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	code, body = do(t, ts, "GET", "/healthz", nil, "")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d: %s", code, body)
	}
	if m := decode[map[string]string](t, body); m["status"] != "draining" {
		t.Fatalf("healthz body during drain: %v", m)
	}
}

// TestAnnounceLinkPrecondition pins the CAS semantics that make announces
// exactly-once across restarts: matching link applies, the
// already-applied retry shape replays without advancing, and a genuine
// mismatch is a 409.
func TestAnnounceLinkPrecondition(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	code, body := do(t, ts, "POST", "/v1/sessions", OpenRequest{System: "muddy:3"}, "")
	if code != http.StatusCreated {
		t.Fatalf("open: %d: %s", code, body)
	}
	sid := decode[SessionState](t, body).Session
	link := func(n int) *int { return &n }
	father := "muddy0 | muddy1 | muddy2"

	code, body = do(t, ts, "POST", "/v1/sessions/"+sid+"/announce",
		AnnounceRequest{Formula: father, Link: link(0)}, "")
	if code != http.StatusOK {
		t.Fatalf("announce at link 0: %d: %s", code, body)
	}
	applied := decode[SessionState](t, body)
	if applied.Link != 1 || applied.Worlds != 7 {
		t.Fatalf("applied state: %+v", applied)
	}

	// The lost-response retry: same formula, stale link — replayed, not
	// re-applied, byte for byte the state the original produced.
	code, retry := do(t, ts, "POST", "/v1/sessions/"+sid+"/announce",
		AnnounceRequest{Formula: father, Link: link(0)}, "")
	if code != http.StatusOK || !bytes.Equal(retry, body) {
		t.Fatalf("retry replay: %d: %s (want %s)", code, retry, body)
	}
	st := s.StatsSnapshot()
	if st.Announces != 1 || st.Replays != 1 {
		t.Fatalf("counters after replay: announces %d replays %d", st.Announces, st.Replays)
	}

	// A different formula at the stale link is a conflict, not a replay.
	code, body = do(t, ts, "POST", "/v1/sessions/"+sid+"/announce",
		AnnounceRequest{Formula: "muddy0", Link: link(0)}, "")
	if code != http.StatusConflict {
		t.Fatalf("stale link, different formula: %d: %s", code, body)
	}
	// A link in the future is a conflict too.
	code, body = do(t, ts, "POST", "/v1/sessions/"+sid+"/announce",
		AnnounceRequest{Formula: father, Link: link(5)}, "")
	if code != http.StatusConflict {
		t.Fatalf("future link: %d: %s", code, body)
	}
	if got := s.StatsSnapshot().Announces; got != 1 {
		t.Fatalf("conflicts advanced the chain: %d announces", got)
	}
	// No precondition keeps the old behavior.
	code, body = do(t, ts, "POST", "/v1/sessions/"+sid+"/announce",
		AnnounceRequest{Formula: "muddy1"}, "")
	if code != http.StatusOK {
		t.Fatalf("unconditional announce: %d: %s", code, body)
	}
}

// TestWriteThroughPersistence: with WriteThrough set every mutation lands
// on disk immediately, so a daemon that dies without draining (the SIGKILL
// path) restarts with the chains it had — and an eviction is persisted
// too, so reclaimed sessions stay dead across the restart.
func TestWriteThroughPersistence(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{StateDir: dir, WriteThrough: true, SessionTTL: time.Minute})
	base := time.Unix(1700000000, 0)
	s1.now = func() time.Time { return base }

	code, body := do(t, ts1, "POST", "/v1/sessions", OpenRequest{System: "muddy:3"}, "")
	if code != http.StatusCreated {
		t.Fatalf("open: %d: %s", code, body)
	}
	sid := decode[SessionState](t, body).Session
	path := filepath.Join(dir, "sessions.json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("open not written through: %v", err)
	}
	if code, body = do(t, ts1, "POST", "/v1/sessions/"+sid+"/announce",
		AnnounceRequest{Formula: "muddy0 | muddy1 | muddy2"}, ""); code != http.StatusOK {
		t.Fatalf("announce: %d: %s", code, body)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var sf stateFile
	if err := json.Unmarshal(data, &sf); err != nil {
		t.Fatal(err)
	}
	if len(sf.Sessions) != 1 || len(sf.Sessions[0].Announced) != 1 {
		t.Fatalf("announce not written through: %s", data)
	}

	// No drain, no Shutdown: a fresh daemon over the same dir restores the
	// chain exactly as written through.
	s2, _ := newTestServer(t, Config{StateDir: dir})
	if n, err := s2.LoadSessions(); err != nil || n != 1 {
		t.Fatalf("crash restore: %d sessions, %v", n, err)
	}
	restored := s2.session(sid)
	if restored == nil || len(restored.announced) != 1 {
		t.Fatalf("restored chain wrong: %+v", restored)
	}

	// Eviction persists too.
	s1.evictIdle(base.Add(2 * time.Minute))
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &sf); err != nil {
		t.Fatal(err)
	}
	if len(sf.Sessions) != 0 {
		t.Fatalf("eviction not written through: %s", data)
	}
}

// TestLoadSessionsRejectsMalformedIDs: a state file with hand-edited IDs
// must be skipped per session, never panic the daemon (the list and
// next-ID paths slice id[1:]).
func TestLoadSessionsRejectsMalformedIDs(t *testing.T) {
	dir := t.TempDir()
	sf := stateFile{Sessions: []persistedSession{
		{ID: "", System: "muddy:2", Worlds: 4, Quotient: 4, Marked: 3},
		{ID: "x9", System: "muddy:2", Worlds: 4, Quotient: 4, Marked: 3},
		{ID: "s", System: "muddy:2", Worlds: 4, Quotient: 4, Marked: 3},
		{ID: "s2v1", System: "muddy:2", Worlds: 4, Quotient: 4, Marked: 3},
	}}
	data, err := json.Marshal(sf)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "sessions.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{StateDir: dir})
	n, err := s.LoadSessions()
	if err != nil || n != 0 {
		t.Fatalf("restored %d malformed sessions, err %v", n, err)
	}
	// The daemon still lists and opens sessions without tripping over a
	// malformed restored ID.
	if code, body := do(t, ts, "GET", "/v1/sessions", nil, ""); code != http.StatusOK {
		t.Fatalf("list after restore: %d: %s", code, body)
	}
	if code, body := do(t, ts, "POST", "/v1/sessions", OpenRequest{System: "muddy:2"}, ""); code != http.StatusCreated {
		t.Fatalf("open after restore: %d: %s", code, body)
	}
}
