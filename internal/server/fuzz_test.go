package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// FuzzStateRestore hammers LoadSessions with arbitrary bytes in place of
// sessions.json. A corrupted, truncated, or hand-edited state file must
// produce an error or skipped records — never a panic — and whatever does
// restore must leave the daemon fully serviceable (the session list
// endpoint parses every restored ID).
func FuzzStateRestore(f *testing.F) {
	// A genuine state file as the happy-path seed.
	{
		dir := f.TempDir()
		s := New(Config{StateDir: dir})
		ts := httptest.NewServer(s.Handler())
		st, _ := http.Post(ts.URL+"/v1/sessions", "application/json",
			bytes.NewReader([]byte(`{"system":"muddy:3","seed":1}`)))
		if st != nil {
			st.Body.Close()
		}
		if _, err := s.SaveSessions(); err != nil {
			f.Fatal(err)
		}
		ts.Close()
		data, err := os.ReadFile(filepath.Join(dir, "sessions.json"))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)/2]) // truncated mid-record
	}
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"sessions":[{"id":"x9","system":"muddy:3","seed":1}]}`))
	f.Add([]byte(`{"sessions":[{"id":"s","system":"muddy:3"},{"id":"","system":""}]}`))
	f.Add([]byte(`{"sessions":[{"id":"s1","system":"quantum:99","seed":1}]}`))
	f.Add([]byte(`{"sessions":[{"id":"s1","system":"muddy:2","seed":1,"worlds":999}]}`))
	f.Add([]byte(`{"sessions":null}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "sessions.json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s := New(Config{StateDir: dir})
		n, err := s.LoadSessions()
		if err != nil {
			return // corrupt files must error, and did
		}
		if n < 0 {
			t.Fatalf("restored %d sessions", n)
		}
		// Restored IDs must survive every downstream parser: the list
		// endpoint sorts by slicing the leading byte off each ID.
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/sessions", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("session list after restore: %d %s", rec.Code, rec.Body)
		}
	})
}

// FuzzRequestDecoding throws arbitrary bodies at every POST endpoint. Any
// status is acceptable; a panic is not — the recovery middleware counts
// panics, and the counter must stay zero.
func FuzzRequestDecoding(f *testing.F) {
	f.Add([]byte(`{"system":"muddy:3","seed":1}`))
	f.Add([]byte(`{"formulas":["K0 muddy1","C (muddy0 | muddy1)"]}`))
	f.Add([]byte(`{"formula":"muddy0 | muddy1","link":0}`))
	f.Add([]byte(``))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"system":1e999}`))
	f.Add([]byte(`{"formulas":"not-a-list"}`))
	f.Add([]byte(`{"formula":"(((((","link":-1}`))
	f.Add([]byte("{\"system\":\"muddy:3\",\"seed\":1,\"x\":\"\x00\xff\"}"))

	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	f.Cleanup(ts.Close)
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json",
		bytes.NewReader([]byte(`{"system":"muddy:2","seed":1}`)))
	if err != nil {
		f.Fatal(err)
	}
	resp.Body.Close()

	paths := []string{"/v1/sessions", "/v1/sessions/s1/eval", "/v1/sessions/s1/announce"}
	f.Fuzz(func(t *testing.T, body []byte) {
		for _, path := range paths {
			resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatalf("POST %s: %v", path, err)
			}
			resp.Body.Close()
		}
		if n := s.StatsSnapshot().Panics; n != 0 {
			t.Fatalf("handler panicked %d times on body %q", n, body)
		}
	})
}
