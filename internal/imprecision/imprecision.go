// Package imprecision implements Appendix B of Halpern & Moses: temporal
// imprecision and the proof that common knowledge can be neither gained nor
// lost in practical systems (Theorem 8).
//
// A system has temporal imprecision when processors cannot perfectly
// coordinate their notions of time: one processor's entire history can be
// shifted slightly in time, producing another legal run, without any other
// (fixed) processor being able to tell. The discrete analogue used here
// shifts histories by one tick. The package provides:
//
//   - ShiftWitness / CheckImprecision: the discrete form of the Appendix B
//     definition, checked exhaustively over a finite system.
//   - CheckLemma14: in a system with temporal imprecision, the initial
//     point (r, 0) is reachable from every point (r, t) in the
//     complete-history indistinguishability graph.
//   - CheckProposition13 / CheckTheorem8: whenever (r, 0) is reachable from
//     (r, t), common knowledge holds at (r, t) iff it holds at (r, 0) —
//     so nothing ever becomes (or ceases to be) common knowledge.
//   - UncertainSystem: the Proposition 15 construction — bounded but
//     uncertain message delivery plus uncertain start times — realized as a
//     concrete finite system exhibiting temporal imprecision.
package imprecision

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/runs"
)

// Direction of a history shift.
type Direction int

// Shift directions: Later means processor i's history in the witness run
// lags one tick behind (everything happens one tick later there); Earlier
// is the converse.
const (
	Later Direction = iota + 1
	Earlier
)

// ShiftWitness looks for a run r' witnessing one-tick temporal imprecision
// for the pair (shifted processor i, fixed processor j) at time t of run r:
//
//	Later:   h(p_i, r, t') = h(p_i, r', t'+1) for all t' <= min(t, H-1),
//	Earlier: h(p_i, r, t'+1) = h(p_i, r', t') for all t' <= min(t, H-1),
//
// and in both cases h(p_j, r, t') = h(p_j, r', t') for all t' <= t.
// It returns the witness run, or nil if none exists in the system.
func ShiftWitness(sys *runs.System, r *runs.Run, i, j int, t runs.Time, dir Direction) *runs.Run {
	limit := t
	if limit > sys.Horizon-1 {
		limit = sys.Horizon - 1
	}
	for _, rp := range sys.Runs {
		ok := true
		for tp := runs.Time(0); tp <= limit && ok; tp++ {
			switch dir {
			case Later:
				ok = r.History(i, tp) == rp.History(i, tp+1)
			case Earlier:
				ok = r.History(i, tp+1) == rp.History(i, tp)
			}
		}
		if !ok {
			continue
		}
		for tp := runs.Time(0); tp <= t && ok; tp++ {
			ok = r.History(j, tp) == rp.History(j, tp)
		}
		if ok {
			return rp
		}
	}
	return nil
}

// Report summarizes an exhaustive imprecision check.
type Report struct {
	// PointsChecked counts (run, time, i, j) tuples examined.
	PointsChecked int
	// Witnessed counts tuples with a shift witness in some direction.
	Witnessed int
	// Missing lists tuples without a witness (boundary artifacts of finite
	// enumeration, or genuine precision in the system).
	Missing []string
}

// Full reports whether every tuple had a witness.
func (rep Report) Full() bool { return len(rep.Missing) == 0 }

// CheckImprecision exhaustively checks the discrete temporal-imprecision
// condition over the system: for every run r, time t and ordered processor
// pair i != j, some run shifts p_i's history by one tick in some direction
// while fixing p_j's.
func CheckImprecision(sys *runs.System) Report {
	var rep Report
	for _, r := range sys.Runs {
		for t := runs.Time(0); t <= sys.Horizon; t++ {
			for i := 0; i < sys.N; i++ {
				for j := 0; j < sys.N; j++ {
					if i == j {
						continue
					}
					rep.PointsChecked++
					if ShiftWitness(sys, r, i, j, t, Later) != nil ||
						ShiftWitness(sys, r, i, j, t, Earlier) != nil {
						rep.Witnessed++
					} else {
						rep.Missing = append(rep.Missing,
							fmt.Sprintf("(%s, t=%d, shift p%d fixing p%d)", r.Name, t, i, j))
					}
				}
			}
		}
	}
	return rep
}

// CheckLemma14 verifies the conclusion of Lemma 14 on a point model: for
// every run r and time t, the initial point (r, 0) is reachable from (r, t)
// in the complete-history graph (with respect to the full processor group).
func CheckLemma14(pm *runs.PointModel) error {
	ids, err := pm.GReachIDs(nil)
	if err != nil {
		return err
	}
	for ri, r := range pm.Sys.Runs {
		for t := runs.Time(0); t <= pm.Sys.Horizon; t++ {
			if ids[pm.World(ri, t)] != ids[pm.World(ri, 0)] {
				return fmt.Errorf("imprecision: (%s, 0) not reachable from (%s, %d)", r.Name, r.Name, t)
			}
		}
	}
	return nil
}

// CheckProposition13 verifies Proposition 13: whenever (r, 0) is reachable
// from (r, t), C_G φ holds at (r, t) iff it holds at (r, 0), for each φ in
// the family.
func CheckProposition13(pm *runs.PointModel, g logic.Group, formulas []logic.Formula) error {
	ids, err := pm.GReachIDs(g)
	if err != nil {
		return err
	}
	for _, phi := range formulas {
		set, err := pm.Eval(logic.C(g, phi))
		if err != nil {
			return err
		}
		for ri, r := range pm.Sys.Runs {
			for t := runs.Time(0); t <= pm.Sys.Horizon; t++ {
				w0, wt := pm.World(ri, 0), pm.World(ri, t)
				if ids[w0] != ids[wt] {
					continue // Lemma 14 premise unavailable at this point
				}
				if set.Contains(wt) != set.Contains(w0) {
					return fmt.Errorf("imprecision: Proposition 13 violated for %s at (%s, %d)", phi, r.Name, t)
				}
			}
		}
	}
	return nil
}

// CheckTheorem8 verifies Theorem 8 on a point model of a system with
// temporal imprecision: for every formula in the family, every run r and
// every time t, C_G φ holds at (r, t) iff it holds at (r, 0) — common
// knowledge is neither gained nor lost.
func CheckTheorem8(pm *runs.PointModel, g logic.Group, formulas []logic.Formula) error {
	for _, phi := range formulas {
		set, err := pm.Eval(logic.C(g, phi))
		if err != nil {
			return err
		}
		for ri, r := range pm.Sys.Runs {
			at0 := set.Contains(pm.World(ri, 0))
			for t := runs.Time(1); t <= pm.Sys.Horizon; t++ {
				if set.Contains(pm.World(ri, t)) != at0 {
					return fmt.Errorf("imprecision: Theorem 8 violated for %s at (%s, %d)", phi, r.Name, t)
				}
			}
		}
	}
	return nil
}

// UncertainConfig parameterizes the Proposition 15 construction.
type UncertainConfig struct {
	// MaxWake is the latest possible wake-up time W; each processor wakes
	// at some time in [0, W] (uncertain start times).
	MaxWake runs.Time
	// MinDelay and MaxDelay bound message delivery (bounded but uncertain
	// delivery times); MinDelay < MaxDelay is required for imprecision.
	MinDelay, MaxDelay runs.Time
	// Horizon of the generated runs. It must leave room for the latest
	// possible delivery: MaxWake + 1 + MaxDelay <= Horizon.
	Horizon runs.Time
}

// UncertainSystem builds the Proposition 15 system: two processors with
// uncertain start times and wake-relative clocks; processor 0 sends a
// message one tick after waking; delivery takes an uncertain bounded time.
// Every combination of wake times and delivery delay is a run.
func UncertainSystem(cfg UncertainConfig) (*runs.System, error) {
	if cfg.MinDelay >= cfg.MaxDelay {
		return nil, fmt.Errorf("imprecision: need MinDelay < MaxDelay for uncertain delivery")
	}
	if cfg.MaxWake < 1 {
		return nil, fmt.Errorf("imprecision: need MaxWake >= 1 for uncertain start times")
	}
	if cfg.MaxWake+1+cfg.MaxDelay > cfg.Horizon {
		return nil, fmt.Errorf("imprecision: horizon %d too small", cfg.Horizon)
	}
	var rs []*runs.Run
	for w0 := runs.Time(0); w0 <= cfg.MaxWake; w0++ {
		for w1 := runs.Time(0); w1 <= cfg.MaxWake; w1++ {
			for d := cfg.MinDelay; d <= cfg.MaxDelay; d++ {
				r := runs.NewRun(fmt.Sprintf("w%d_%d_d%d", w0, w1, d), 2, cfg.Horizon)
				r.Wake[0], r.Wake[1] = w0, w1
				setWakeClock(r, 0, w0)
				setWakeClock(r, 1, w1)
				send := w0 + 1
				r.Send(0, 1, send, send+d, "m")
				rs = append(rs, r)
			}
		}
	}
	return runs.NewSystem(rs...)
}

// setWakeClock gives processor p a clock reading t - wake (elapsed local
// time), the natural clock of a processor that does not know real time.
func setWakeClock(r *runs.Run, p int, wake runs.Time) {
	readings := make([]int, r.Horizon+1)
	for t := range readings {
		if runs.Time(t) >= wake {
			readings[t] = t - int(wake)
		}
	}
	// Clock values before the wake time are unused (ClockReading reports
	// them undefined) but must keep the slice monotone from the wake time,
	// which zero-filling satisfies.
	_ = r.SetClock(p, readings)
}

// DeliveredProp is the ground fact "the message has been delivered".
const DeliveredProp = "delivered"

// Interp returns the standard interpretation for Proposition 15 systems.
func Interp() runs.Interpretation {
	return runs.Interpretation{
		DeliveredProp: runs.StablyTrue(runs.ReceivedBy("m")),
		"sent":        runs.StablyTrue(runs.SentBy("m")),
	}
}
