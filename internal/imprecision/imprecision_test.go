package imprecision

import (
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/runs"
)

func uncertain(t *testing.T) (*runs.System, *runs.PointModel) {
	t.Helper()
	sys, err := UncertainSystem(UncertainConfig{
		MaxWake: 2, MinDelay: 1, MaxDelay: 2, Horizon: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, sys.Model(runs.CompleteHistoryView, Interp())
}

func TestUncertainSystemShape(t *testing.T) {
	sys, _ := uncertain(t)
	// 3 wake choices for each processor x 2 delays.
	if len(sys.Runs) != 18 {
		t.Fatalf("system has %d runs, want 18", len(sys.Runs))
	}
	for _, r := range sys.Runs {
		if len(r.Messages) != 1 || !r.Messages[0].Delivered() {
			t.Errorf("run %s malformed: %+v", r.Name, r.Messages)
		}
	}
}

func TestWakeRelativeClocks(t *testing.T) {
	sys, _ := uncertain(t)
	r, ok := sys.RunByName("w2_1_d1")
	if !ok {
		t.Fatal("run not found")
	}
	if _, defined := r.ClockReading(0, 1); defined {
		t.Error("clock should be undefined before wake")
	}
	if c, defined := r.ClockReading(0, 2); !defined || c != 0 {
		t.Errorf("clock at wake = %d (%v), want 0", c, defined)
	}
	if c, _ := r.ClockReading(0, 5); c != 3 {
		t.Errorf("clock at t=5 = %d, want 3", c)
	}
}

func TestShiftWitnessExists(t *testing.T) {
	sys, _ := uncertain(t)
	// Shifting p0 one tick later in run (w0=0, w1=0, d=2) while fixing p1
	// is witnessed by (w0=1, w1=0, d=1): the send happens a tick later but
	// arrives at the same absolute time.
	r, _ := sys.RunByName("w0_0_d2")
	w := ShiftWitness(sys, r, 0, 1, sys.Horizon-1, Later)
	if w == nil {
		t.Fatal("no Later witness for (w0_0_d2, shift p0)")
	}
	if w.Name != "w1_0_d1" {
		t.Errorf("witness = %s, want w1_0_d1", w.Name)
	}
	// For d=1 the Later shift is impossible (delay cannot shrink), but the
	// Earlier one works.
	r, _ = sys.RunByName("w1_0_d1")
	if ShiftWitness(sys, r, 0, 1, sys.Horizon-1, Earlier) == nil {
		t.Error("no Earlier witness for (w1_0_d1, shift p0)")
	}
}

func TestImprecisionReport(t *testing.T) {
	sys, _ := uncertain(t)
	rep := CheckImprecision(sys)
	if rep.PointsChecked == 0 {
		t.Fatal("nothing checked")
	}
	// The interior of the system is fully imprecise. The paper takes
	// delivery times from OPEN intervals (L, H), so a shifted run always
	// exists; with discrete time the extremal (wake, delay) corners (e.g.
	// wake 0 with minimal delay) have no single-step witness. Those corner
	// tuples must be a small minority, and — as Lemma 14 / Theorem 8 below
	// confirm — reachability still flows around them through longer
	// chains.
	if frac := float64(rep.Witnessed) / float64(rep.PointsChecked); frac < 0.8 {
		t.Errorf("only %.0f%% of tuples witnessed; missing: %v", 100*frac, rep.Missing)
	}
	for _, miss := range rep.Missing {
		// Every missing tuple involves an extremal wake or delay.
		if !strings.Contains(miss, "w0_") && !strings.Contains(miss, "w2_") &&
			!strings.Contains(miss, "_0_") && !strings.Contains(miss, "_2_") &&
			!strings.Contains(miss, "d1") && !strings.Contains(miss, "d2") {
			t.Errorf("non-extremal tuple missing a witness: %s", miss)
		}
	}
}

func TestLemma14InitialPointReachable(t *testing.T) {
	_, pm := uncertain(t)
	if err := CheckLemma14(pm); err != nil {
		t.Error(err)
	}
}

var formulaFamily = []logic.Formula{
	logic.P(DeliveredProp),
	logic.P("sent"),
	logic.Neg(logic.P(DeliveredProp)),
	logic.K(0, logic.P("sent")),
	logic.True,
}

func TestProposition13(t *testing.T) {
	_, pm := uncertain(t)
	if err := CheckProposition13(pm, nil, formulaFamily); err != nil {
		t.Error(err)
	}
	if err := CheckProposition13(pm, logic.NewGroup(0, 1), formulaFamily); err != nil {
		t.Error(err)
	}
}

func TestTheorem8CommonKnowledgeFrozen(t *testing.T) {
	_, pm := uncertain(t)
	if err := CheckTheorem8(pm, nil, formulaFamily); err != nil {
		t.Error(err)
	}
	// In particular, nothing contingent ever becomes common knowledge:
	// C delivered and C sent are empty, C true is full.
	for _, tc := range []struct {
		src  string
		full bool
	}{
		{"C delivered", false},
		{"C sent", false},
		{"C true", true},
	} {
		set, err := pm.Eval(logic.MustParse(tc.src))
		if err != nil {
			t.Fatal(err)
		}
		if tc.full && !set.IsFull() {
			t.Errorf("%s should hold everywhere", tc.src)
		}
		if !tc.full && !set.IsEmpty() {
			t.Errorf("%s should hold nowhere, holds at %s", tc.src, set)
		}
	}
	// Yet ordinary knowledge IS gained: p1 knows "sent" after delivery.
	k, err := pm.Eval(logic.MustParse("K1 sent"))
	if err != nil {
		t.Fatal(err)
	}
	if k.IsEmpty() {
		t.Error("K1 sent should hold at some points (knowledge is gained, common knowledge is not)")
	}
}

func TestTheorem8FailsWithGlobalClock(t *testing.T) {
	// The paper: a global clock removes temporal imprecision, and facts
	// like "it is 5 o'clock" do become common knowledge. Build the same
	// message pattern but with identity (global) clocks and check that the
	// Theorem 8 conclusion now fails for a clock fact.
	mk := func(d runs.Time, name string) *runs.Run {
		r := runs.NewRun(name, 2, 6)
		r.SetIdentityClock(0)
		r.SetIdentityClock(1)
		r.Send(0, 1, 1, 1+d, "m")
		return r
	}
	sys := runs.MustSystem(mk(1, "d1"), mk(2, "d2"))
	pm := sys.Model(runs.CompleteHistoryView, runs.Interpretation{
		"five": func(_ *runs.Run, t runs.Time) bool { return t == 5 },
	})
	set, err := pm.Eval(logic.MustParse("C five"))
	if err != nil {
		t.Fatal(err)
	}
	w, _ := pm.WorldOf("d1", 5)
	if !set.Contains(w) {
		t.Error("with a global clock, 'it is 5 o'clock' should be common knowledge at 5")
	}
	if err := CheckTheorem8(pm, nil, []logic.Formula{logic.P("five")}); err == nil {
		t.Error("Theorem 8 conclusion should fail in a system with a global clock")
	}
}

func TestUncertainSystemValidation(t *testing.T) {
	if _, err := UncertainSystem(UncertainConfig{MaxWake: 1, MinDelay: 2, MaxDelay: 2, Horizon: 9}); err == nil {
		t.Error("MinDelay == MaxDelay accepted")
	}
	if _, err := UncertainSystem(UncertainConfig{MaxWake: 0, MinDelay: 1, MaxDelay: 2, Horizon: 9}); err == nil {
		t.Error("MaxWake == 0 accepted")
	}
	if _, err := UncertainSystem(UncertainConfig{MaxWake: 3, MinDelay: 1, MaxDelay: 2, Horizon: 4}); err == nil {
		t.Error("tiny horizon accepted")
	}
}

func BenchmarkTheorem8(b *testing.B) {
	sys, err := UncertainSystem(UncertainConfig{MaxWake: 2, MinDelay: 1, MaxDelay: 2, Horizon: 6})
	if err != nil {
		b.Fatal(err)
	}
	pm := sys.Model(runs.CompleteHistoryView, Interp())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := CheckTheorem8(pm, nil, formulaFamily); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkImprecisionCheck(b *testing.B) {
	sys, err := UncertainSystem(UncertainConfig{MaxWake: 2, MinDelay: 1, MaxDelay: 2, Horizon: 6})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = CheckImprecision(sys)
	}
}
