package scenario

import (
	"reflect"
	"strings"
	"testing"
)

// goldenMatrix pins the full seed-1 attainment matrix byte for byte. The CI
// smoke sweep and the determinism test below compare against the same
// string, so any drift in sampling, evaluation order or rendering fails
// loudly here first.
const goldenMatrix = "attainment matrix: seed=1 agents=4 samples=12 eps=2 T=3\n" +
	"regime         C    C^eps  C^dia  C^T   runs  points   t*  spread\n" +
	"sync-fixed     yes  yes    yes    yes      6      90    2       2\n" +
	"bounded        no   yes    yes    no      35     525    2       2\n" +
	"async          no   no     yes    no      60     900    6       6\n" +
	"drift-within   no   yes    yes    yes     48     720    2       2\n" +
	"drift-beyond   no   yes    yes    no      48     720    2       2\n" +
	"lossy          no   no     no     no      30     450    2   never\n" +
	"crash          no   no     no     no      67    1005    2       2\n" +
	"dup            no   yes    yes    no      57     855    3       3\n"

func TestSweepGoldenMatrix(t *testing.T) {
	res, err := Sweep(Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Matrix(); got != goldenMatrix {
		t.Fatalf("matrix drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, goldenMatrix)
	}
}

// TestPaperSeparations asserts the qualitative claims of the paper directly
// on the verdicts, independent of rendering: each failure regime loses
// exactly the knowledge variants Halpern & Moses say it must.
func TestPaperSeparations(t *testing.T) {
	res, err := Sweep(Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][4]bool{ // C, C^eps, C^dia, C^T
		"sync-fixed":   {true, true, true, true},
		"bounded":      {false, true, true, false},
		"async":        {false, false, true, false},
		"drift-within": {false, true, true, true},
		"drift-beyond": {false, true, true, false},
		"lossy":        {false, false, false, false},
		"crash":        {false, false, false, false},
		// Duplication destroys no deliveries: the at-least-once channel
		// attains exactly what its delay regime (bounded) does.
		"dup": {false, true, true, false},
	}
	if len(res.Verdicts) != len(want) {
		t.Fatalf("swept %d regimes, want %d", len(res.Verdicts), len(want))
	}
	for _, v := range res.Verdicts {
		w, ok := want[v.Regime]
		if !ok {
			t.Fatalf("unexpected regime %q", v.Regime)
		}
		if got := [4]bool{v.C, v.Ceps, v.Cev, v.Ct}; got != w {
			t.Errorf("%s: attained %v, want %v", v.Regime, got, w)
		}
	}
	// The spread column carries the paper's Section 11 story: the bounded
	// regime's onset spread fits inside ε, the async witness's exceeds it,
	// and the lossy witness has a processor that never learns.
	byKey := map[string]Verdict{}
	for _, v := range res.Verdicts {
		byKey[v.Regime] = v
	}
	p := Params{Seed: 1}.withDefaults()
	if s := byKey["bounded"].Spread; s > p.Eps {
		t.Errorf("bounded witness spread %d exceeds eps %d", s, p.Eps)
	}
	if s := byKey["async"].Spread; s <= p.Eps {
		t.Errorf("async witness spread %d does not exceed eps %d", s, p.Eps)
	}
	if s := byKey["lossy"].Spread; s != -1 {
		t.Errorf("lossy witness spread %d, want -1 (some processor never learns)", s)
	}
}

// TestSweepDeterministic is the determinism property of the engine: the
// same seed yields the byte-identical matrix across repetitions and across
// EvalBatch worker counts (run it under -race to check the fan-out too).
func TestSweepDeterministic(t *testing.T) {
	for _, workers := range []int{1, 1, 2, -1} {
		res, err := Sweep(Params{Seed: 1, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Matrix(); got != goldenMatrix {
			t.Fatalf("workers=%d: matrix differs from golden:\n%s", workers, got)
		}
	}
}

// TestBuildByteIdentical rebuilds every regime's sampled system twice and
// compares run names and canonical fingerprints: the fault-injection path
// from one int64 seed to a run system is reproducible byte for byte.
func TestBuildByteIdentical(t *testing.T) {
	p := Params{Seed: 3}
	for _, rg := range Regimes(p) {
		b1, err := Build(p, rg)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := Build(p, rg)
		if err != nil {
			t.Fatal(err)
		}
		if len(b1.Sys.Runs) != len(b2.Sys.Runs) {
			t.Fatalf("%s: run counts differ: %d vs %d", rg.Key, len(b1.Sys.Runs), len(b2.Sys.Runs))
		}
		for i := range b1.Sys.Runs {
			if b1.Sys.Runs[i].Name != b2.Sys.Runs[i].Name {
				t.Fatalf("%s: run %d names differ: %q vs %q", rg.Key, i, b1.Sys.Runs[i].Name, b2.Sys.Runs[i].Name)
			}
			if b1.Sys.Runs[i].Fingerprint() != b2.Sys.Runs[i].Fingerprint() {
				t.Fatalf("%s: run %d (%s) fingerprints differ", rg.Key, i, b1.Sys.Runs[i].Name)
			}
		}
		if b1.WitnessIdx != b2.WitnessIdx || b1.TStar != b2.TStar {
			t.Fatalf("%s: witness differs: (%d, %d) vs (%d, %d)",
				rg.Key, b1.WitnessIdx, b1.TStar, b2.WitnessIdx, b2.TStar)
		}
	}
}

func TestBuildWitnessIsFastestEarliestWake(t *testing.T) {
	p := Params{Seed: 1}
	rg, err := RegimeByKey(p, "async")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(p, rg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.Witness.Name, "go-w0#") {
		t.Fatalf("witness %q is not a w=0 go sample", b.Witness.Name)
	}
	for _, r := range b.Sys.Runs {
		if strings.HasPrefix(r.Name, "go-w0#") && actionPoint(r) < b.TStar {
			t.Fatalf("run %s acts at %d, before the witness's %d", r.Name, actionPoint(r), b.TStar)
		}
	}
}

// TestLadderIncrementalMatchesScratch checks the ablation the benchmark
// sweep measures: the seeded incremental re-refinement path of runs.Chain
// and the from-scratch restriction path produce identical ladders.
func TestLadderIncrementalMatchesScratch(t *testing.T) {
	p := Params{Seed: 1}
	for _, key := range []string{"sync-fixed", "bounded"} {
		rg, err := RegimeByKey(p, key)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(p, rg)
		if err != nil {
			t.Fatal(err)
		}
		inc, err := b.Ladder(p, true)
		if err != nil {
			t.Fatal(err)
		}
		scr, err := b.Ladder(p, false)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(inc, scr) {
			t.Fatalf("%s: incremental ladder %+v != from-scratch %+v", key, inc, scr)
		}
		if len(inc) == 0 {
			t.Fatalf("%s: empty ladder", key)
		}
		for i := 1; i < len(inc); i++ {
			if inc[i].Points > inc[i-1].Points {
				t.Fatalf("%s: announcement %d grew the model: %d -> %d points",
					key, inc[i].Deliveries, inc[i-1].Points, inc[i].Points)
			}
		}
		// Announcing the full delivery count makes the broadcast fact common
		// knowledge even where the channel alone could not (bounded loses C;
		// the announcement restores it).
		if last := inc[len(inc)-1]; !last.Common {
			t.Fatalf("%s: C(sent) still fails after announcing del>=%d", key, last.Deliveries)
		}
	}
}

// TestDupRegimeExercisesDuplication pins that the dup regime actually
// drives the duplicate-delivery fault end to end: some sampled run carries
// two delivered copies of one send (same sender, receiver, send time and
// payload), and the duplicated copies enlarge the sampled run space beyond
// the bounded regime's (the extra copies are observable in receiver
// histories, or the regime would be a no-op).
func TestDupRegimeExercisesDuplication(t *testing.T) {
	p := Params{Seed: 1}
	rgDup, err := RegimeByKey(p, "dup")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(p, rgDup)
	if err != nil {
		t.Fatal(err)
	}
	dupSeen := false
	for _, r := range b.Sys.Runs {
		type key struct {
			from, to int
			at       int
			payload  string
		}
		seen := map[key]bool{}
		for _, m := range r.Messages {
			if !m.Delivered() {
				continue
			}
			k := key{m.From, m.To, int(m.SendTime), m.Payload}
			if seen[k] {
				dupSeen = true
			}
			seen[k] = true
		}
	}
	if !dupSeen {
		t.Fatal("no sampled dup-regime run carries a duplicated delivery")
	}

	rgBounded, err := RegimeByKey(p, "bounded")
	if err != nil {
		t.Fatal(err)
	}
	bb, err := Build(p, rgBounded)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Sys.Runs) <= len(bb.Sys.Runs) {
		t.Fatalf("dup regime sampled %d distinct runs, want more than bounded's %d (duplicates must be observable)",
			len(b.Sys.Runs), len(bb.Sys.Runs))
	}
}

func TestRegimeByKeyUnknown(t *testing.T) {
	if _, err := RegimeByKey(Params{}, "sync-fixed"); err != nil {
		t.Fatal(err)
	}
	if _, err := RegimeByKey(Params{}, "quantum"); err == nil {
		t.Fatal("unknown regime accepted")
	}
}
