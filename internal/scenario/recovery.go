package scenario

import (
	"fmt"
	"strconv"

	"repro/internal/kripke"
	"repro/internal/logic"
	"repro/internal/runs"
)

// Post-recovery knowledge: the crash regime's processors go down for a
// window and come back with their pre-crash memory intact (the engine
// keeps their history; deliveries INTO the window are lost). This file
// model-checks what that buys them: knowledge of the stable broadcast
// fact held at the moment of the crash must still be held at the first
// post-recovery point — under the complete-history view a processor's
// partition only refines over time, so stable facts are never unlearned —
// while a processor that went down ignorant re-learns the fact only if a
// delivery reaches it after the window, which the onset column makes
// visible check by check.

// RecoveryCheck is one crashed processor's knowledge around its crash
// window in one sampled run of the crash regime.
type RecoveryCheck struct {
	Run  string
	Proc int
	// Start and End delimit the crash window: the processor is down during
	// [Start, End] and back at End+1.
	Start, End runs.Time
	// KnewAtCrash reports K_p(sent) at the point the window opens.
	KnewAtCrash bool
	// KnowsOnRecovery reports K_p(sent) at the first post-recovery point
	// (End+1), the post-recovery witness point.
	KnowsOnRecovery bool
	// Onset is the first time K_p(sent) holds in this run, or runs.Lost if
	// the processor never learns the fact within the horizon.
	Onset runs.Time
	// Relearned marks a processor that went down not knowing the fact and
	// acquired it at or after the recovery point — knowledge rebuilt from
	// post-recovery deliveries, not from memory.
	Relearned bool
}

// PostRecoveryChecks builds the crash regime and model-checks K_p(sent)
// around every sampled crash window whose recovery point lies inside the
// horizon. One EvalBatch evaluates the per-processor knowledge sets over
// the whole point model; the checks are then read off world by world.
func PostRecoveryChecks(p Params) ([]RecoveryCheck, error) {
	p = p.withDefaults()
	rg, err := RegimeByKey(p, "crash")
	if err != nil {
		return nil, err
	}
	b, err := Build(p, rg)
	if err != nil {
		return nil, err
	}
	fs := make([]logic.Formula, p.Agents)
	for i := range fs {
		fs[i] = logic.K(logic.Agent(i), logic.P(SentProp))
	}
	sets, err := b.PM.EvalBatch(fs, kripke.BatchWorkers(p.Workers))
	if err != nil {
		return nil, fmt.Errorf("scenario crash recovery: %w", err)
	}
	var checks []RecoveryCheck
	for ri, r := range b.Sys.Runs {
		for proc := 0; proc < p.Agents; proc++ {
			start, okS := r.Meta["crash"+strconv.Itoa(proc)+".start"]
			end, okE := r.Meta["crash"+strconv.Itoa(proc)+".end"]
			if !okS || !okE {
				continue
			}
			rec := runs.Time(end) + 1
			if rec > r.Horizon {
				continue // the window never closes inside the horizon
			}
			c := RecoveryCheck{
				Run:   r.Name,
				Proc:  proc,
				Start: runs.Time(start),
				End:   runs.Time(end),
				Onset: runs.Lost,
			}
			know := sets[proc]
			for t := runs.Time(0); t <= r.Horizon; t++ {
				if know.Contains(b.PM.World(ri, t)) {
					c.Onset = t
					break
				}
			}
			c.KnewAtCrash = know.Contains(b.PM.World(ri, c.Start))
			c.KnowsOnRecovery = know.Contains(b.PM.World(ri, rec))
			c.Relearned = !c.KnewAtCrash && c.Onset != runs.Lost && c.Onset >= rec
			checks = append(checks, c)
		}
	}
	return checks, nil
}
