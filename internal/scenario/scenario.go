// Package scenario sweeps the fault regimes of Halpern & Moses dynamically:
// for each communication/failure regime it simulates a seeded fault-injected
// run system of a broadcast protocol (internal/protocol's virtual-clock
// engine over an internal/faults plan), builds the point model, and
// model-checks which of the paper's knowledge variants — C, ε-common,
// eventual-common, timestamped-common — is attained at the witness run's
// action point. The sweep reproduces the paper's qualitative separations
// from injected faults alone:
//
//   - sync-fixed (reliable, fixed known delay, synchronized clocks) attains
//     full common knowledge: histories pin send times exactly.
//   - bounded (delivery within an uncertain bound, the R2–D2 regime of
//     Section 8) loses C — the backward regress through not-yet-delivered
//     points reaches runs where nothing was sent — but attains C^ε for ε
//     covering the knowledge-onset spread (Section 11).
//   - async (delivery guaranteed, delay unbounded: NG1′) stretches onsets
//     beyond any fixed ε, leaving only eventual common knowledge C^⋄.
//   - drift-within/drift-beyond: with timestamped action at clock time T,
//     clock drift within the slack between T and the last delivery keeps
//     C^T, drift beyond it puts some processor's T-point before its
//     delivery and loses C^T (Section 12).
//   - lossy (drops: NG1/NG2) and crash (processors down across delivery)
//     gate every variant — the idle configuration plays the paper's
//     "possibly nothing was sent" run, so a processor that never receives
//     never learns the fact, and the fixed points collapse.
//   - dup (bounded delay plus duplicated deliveries: an at-least-once
//     channel) attains exactly what bounded does — extra copies destroy
//     no information, so duplication is the one fault knowledge survives
//     for free.
//
// Every sweep is reproducible byte for byte from its seed: the fault plans
// derive order-independent splitmix64 streams, generation is serial, and
// evaluation parallelism (EvalBatch) is verdict-deterministic.
package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/faults"
	"repro/internal/kripke"
	"repro/internal/logic"
	"repro/internal/protocol"
	"repro/internal/runs"
	"repro/internal/temporal"
)

// SentProp is the ground fact swept for attainment: the broadcaster has
// initiated (a stable fact in the sense of Section 11).
const SentProp = "sent"

// Payload is the broadcast message payload.
const Payload = "m"

// DeliveredProp returns the ground-fact name for "at least d broadcast
// messages have been delivered", the announcement ladder of Ladder.
func DeliveredProp(d int) string { return "del" + strconv.Itoa(d) }

// Params configures a sweep. The zero value of every field selects a
// default; Workers follows kripke.BatchWorkers semantics (0 defaults to
// serial here, callers translate CLI flags with kripke.WorkersFromFlag).
type Params struct {
	Seed      int64
	Agents    int              // processors, including the broadcaster (default 4)
	Samples   int              // sampled runs per initial configuration (default 12)
	Eps       int              // ε of the C^ε column (default 2)
	T         int              // timestamp of the C^T column (default 3)
	Drift     int              // drift bound of the drift-beyond regime (default 3)
	Drop      float64          // loss probability of the lossy regime (default 0.4)
	CrashP    float64          // crash probability of the crash regime (default 0.5)
	DupP      float64          // duplication probability of the dup regime (default 0.4)
	Delay     faults.DelayDist // delay distribution of the bounded regime (default uniform:1-2)
	AsyncSpan int              // sampled-delay span of the async regime (default 8)
	Horizon   runs.Time        // observation horizon (default 14)
	Workers   int              // EvalBatch worker count (default 1, serial)
}

func (p Params) withDefaults() Params {
	if p.Agents == 0 {
		p.Agents = 4
	}
	if p.Samples == 0 {
		p.Samples = 12
	}
	if p.Eps == 0 {
		p.Eps = 2
	}
	if p.T == 0 {
		p.T = 3
	}
	if p.Drift == 0 {
		p.Drift = 3
	}
	if p.Drop == 0 {
		p.Drop = 0.4
	}
	if p.CrashP == 0 {
		p.CrashP = 0.5
	}
	if p.DupP == 0 {
		p.DupP = 0.4
	}
	if p.Delay == nil {
		p.Delay = faults.Uniform{Min: 1, MaxD: 2}
	}
	if p.AsyncSpan == 0 {
		p.AsyncSpan = 8
	}
	if p.Horizon == 0 {
		p.Horizon = 14
	}
	if p.Workers == 0 {
		p.Workers = 1
	}
	return p
}

// Regime is one row of the sweep: a named fault plan plus the broadcaster
// wake-time jitter that populates the run system with genuinely uncertain
// send times (without jitter the fact "sent" holds at every point and every
// variant trivializes).
type Regime struct {
	Key    string
	Desc   string
	Plan   *faults.Plan
	Jitter []runs.Time
}

// Regimes returns the eight swept regimes under the given parameters. Each
// regime's plan seed is derived from the sweep seed and the regime's index,
// so regimes draw independent fault streams from one CLI seed.
func Regimes(p Params) []Regime {
	p = p.withDefaults()
	// Delay regimes jitter the send time tick by tick: the C regress needs
	// runs whose send is later than the action point. Drift regimes space
	// the jitter wider than any drifted timestamp can wander, so the C^T
	// verdict isolates clock uncertainty rather than send-time ambiguity.
	stepJitter := []runs.Time{0, 1, 2, 3, 4}
	wideJitter := []runs.Time{0, 3, 6}
	mk := func(idx int, key, desc string, jit []runs.Time, plan faults.Plan) Regime {
		plan.Seed = p.Seed + int64(idx+1)*1000003
		return Regime{Key: key, Desc: desc, Plan: &plan, Jitter: jit}
	}
	return []Regime{
		mk(0, "sync-fixed", "reliable, fixed known delay, synchronized clocks", stepJitter,
			faults.Plan{Delay: faults.Fixed{D: 1}}),
		mk(1, "bounded", "reliable, delay uncertain within a bound (R2-D2)", stepJitter,
			faults.Plan{Delay: p.Delay}),
		mk(2, "async", "reliable, unbounded delay (NG1')", stepJitter,
			faults.Plan{Delay: faults.Unbounded{Span: p.AsyncSpan}}),
		mk(3, "drift-within", "fixed delay, clock drift within the timestamp slack", wideJitter,
			faults.Plan{Delay: faults.Fixed{D: 1}, Drift: 1}),
		mk(4, "drift-beyond", "fixed delay, clock drift beyond the timestamp slack", wideJitter,
			faults.Plan{Delay: faults.Fixed{D: 1}, Drift: p.Drift}),
		mk(5, "lossy", "fixed delay, messages dropped (NG1)", stepJitter,
			faults.Plan{Delay: faults.Fixed{D: 1}, Drop: p.Drop}),
		mk(6, "crash", "fixed delay, processes crash and recover", stepJitter,
			faults.Plan{Delay: faults.Fixed{D: 1}, Crash: faults.CrashSpec{P: p.CrashP, MinDown: 2, MaxDown: 4}}),
		// Duplication rides on the bounded regime's uncertain delay: an
		// at-least-once channel. The extra copies change the receivers'
		// histories (and multiply the sampled run space) but destroy no
		// delivery, so the attainment row must match bounded — duplication
		// alone costs no knowledge, which is exactly why a service can
		// retry deliveries and dedupe without weakening its verdicts.
		mk(7, "dup", "bounded delay, messages duplicated (at-least-once)", stepJitter,
			faults.Plan{Delay: p.Delay, Dup: p.DupP}),
	}
}

// RegimeByKey returns the named regime of the sweep.
func RegimeByKey(p Params, key string) (Regime, error) {
	for _, rg := range Regimes(p) {
		if rg.Key == key {
			return rg, nil
		}
	}
	return Regime{}, fmt.Errorf("scenario: unknown regime %q", key)
}

// broadcast returns the joint protocol: processor 0 broadcasts Payload to
// everyone at its first step after waking if initialized "go"; everyone
// else is silent.
func broadcast(n int) []protocol.Protocol {
	ps := make([]protocol.Protocol, n)
	ps[0] = protocol.Func(func(v protocol.LocalView) []protocol.Outgoing {
		if v.Init != "go" || len(v.Sent) > 0 {
			return nil
		}
		out := make([]protocol.Outgoing, 0, n-1)
		for q := 1; q < n; q++ {
			out = append(out, protocol.Outgoing{To: q, Payload: Payload})
		}
		return out
	})
	for q := 1; q < n; q++ {
		ps[q] = protocol.Silent
	}
	return ps
}

// configs builds the initial configurations of a regime: one "go"
// configuration per jittered broadcaster wake time, plus the "idle"
// configuration in which nothing is ever sent — the paper's NG gating run,
// which keeps a processor that received nothing from concluding the fact
// by clock alone. All processors carry clocks (base offset 0; the plan's
// drift stream perturbs them).
func configs(n int, jitter []runs.Time) []protocol.Config {
	zero := make([]int, n)
	inits := func(s string) []string {
		in := make([]string, n)
		in[0] = s
		return in
	}
	cfgs := make([]protocol.Config, 0, len(jitter)+1)
	for _, w := range jitter {
		wake := make([]runs.Time, n)
		wake[0] = w
		cfgs = append(cfgs, protocol.Config{
			Name:  fmt.Sprintf("go-w%d", w),
			Init:  inits("go"),
			Wake:  wake,
			Clock: zero,
		})
	}
	cfgs = append(cfgs, protocol.Config{Name: "idle", Init: inits("idle"), Clock: zero})
	return cfgs
}

// interpretation maps SentProp to the stable "broadcast initiated" fact and
// DeliveredProp(1..n-1) to the delivery-count ladder.
func interpretation(n int) runs.Interpretation {
	in := runs.Interpretation{SentProp: runs.StablyTrue(runs.SentBy(Payload))}
	for d := 1; d <= n-1; d++ {
		d := d
		in[DeliveredProp(d)] = func(r *runs.Run, t runs.Time) bool {
			return r.DeliveredBefore(t+1) >= d
		}
	}
	return in
}

// Built is a regime's sampled system with its point model and witness
// point, shared by the verdict sweep, the announcement ladder and the CLI.
type Built struct {
	Regime     Regime
	Sys        *runs.System
	PM         *runs.PointModel
	Witness    *runs.Run
	WitnessIdx int
	TStar      runs.Time
}

// Build samples the regime's run system and constructs its point model.
// The witness is the fastest sampled run of the earliest-wake "go"
// configuration — the one whose action point (the first time every one of
// its deliveries is visible) comes soonest. TStar is that action point;
// attainment is judged there, mirroring the E7 discipline: the protocol
// acts as soon as its own deliveries are in, not at late points where
// finite-horizon truncation makes C spuriously true. Judging the fastest
// sample is the regime's best case — what a regime cannot attain on its
// luckiest execution, it cannot attain at all.
func Build(p Params, rg Regime) (*Built, error) {
	p = p.withDefaults()
	cfgs := configs(p.Agents, rg.Jitter)
	sys, err := protocol.SampleSystem(broadcast(p.Agents), rg.Plan, cfgs, p.Samples, p.Horizon, protocol.Options{})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", rg.Key, err)
	}
	prefix := cfgs[0].Name + "#"
	wi := 0
	for ri, r := range sys.Runs {
		if !strings.HasPrefix(r.Name, prefix) {
			continue
		}
		if actionPoint(r) < actionPoint(sys.Runs[wi]) {
			wi = ri
		}
	}
	return &Built{
		Regime:     rg,
		Sys:        sys,
		PM:         sys.Model(runs.CompleteHistoryView, interpretation(p.Agents)),
		Witness:    sys.Runs[wi],
		WitnessIdx: wi,
		TStar:      actionPoint(sys.Runs[wi]),
	}, nil
}

// actionPoint returns the first time every delivery of the run is visible
// (the latest receive time plus one), clipped to the horizon; a run with no
// deliveries is judged at the horizon.
func actionPoint(r *runs.Run) runs.Time {
	t := runs.Time(Lost)
	for _, m := range r.Messages {
		if m.Delivered() && m.RecvTime+1 > t {
			t = m.RecvTime + 1
		}
	}
	if t == Lost || t > r.Horizon {
		return r.Horizon
	}
	return t
}

// Lost aliases runs.Lost for the onset column of the matrix.
const Lost = runs.Lost

// Verdict is one row of the attainment matrix.
type Verdict struct {
	Regime string
	C      bool // common knowledge at the witness action point
	Ceps   bool // ε-common knowledge (Section 11)
	Cev    bool // eventual common knowledge (Section 11)
	Ct     bool // timestamped common knowledge at clock time T (Section 12)
	Runs   int  // deduped sampled runs in the regime's system
	Points int  // worlds of the point model
	TStar  runs.Time
	// Spread is the witness run's knowledge-onset spread (temporal.Onsets);
	// -1 if some processor never learns the fact within the horizon.
	Spread int
}

// Result is a finished sweep.
type Result struct {
	Params   Params
	Verdicts []Verdict
}

// Sweep runs every regime and returns the attainment matrix. Verdicts are
// evaluated in one EvalBatch per regime (Workers wide) at the witness
// action point; batch evaluation is verdict-deterministic, so the result
// is byte-identical across worker counts and repetitions.
func Sweep(p Params) (*Result, error) {
	p = p.withDefaults()
	res := &Result{Params: p}
	phi := logic.P(SentProp)
	for _, rg := range Regimes(p) {
		b, err := Build(p, rg)
		if err != nil {
			return nil, err
		}
		fs := []logic.Formula{
			logic.C(nil, phi),
			logic.Ceps(nil, p.Eps, phi),
			logic.Cev(nil, phi),
			logic.Ct(nil, p.T, phi),
		}
		sets, err := b.PM.EvalBatch(fs, kripke.BatchWorkers(p.Workers))
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", rg.Key, err)
		}
		onsets, err := temporal.Onsets(b.PM, phi)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", rg.Key, err)
		}
		w := b.PM.World(b.WitnessIdx, b.TStar)
		res.Verdicts = append(res.Verdicts, Verdict{
			Regime: rg.Key,
			C:      sets[0].Contains(w),
			Ceps:   sets[1].Contains(w),
			Cev:    sets[2].Contains(w),
			Ct:     sets[3].Contains(w),
			Runs:   len(b.Sys.Runs),
			Points: b.PM.NumWorlds(),
			TStar:  b.TStar,
			Spread: temporal.OnsetSpread(onsets[b.WitnessIdx]),
		})
	}
	return res, nil
}

// Matrix renders the attainment matrix. The golden tests and the CI smoke
// sweep compare this string byte for byte.
func (r *Result) Matrix() string {
	var b strings.Builder
	fmt.Fprintf(&b, "attainment matrix: seed=%d agents=%d samples=%d eps=%d T=%d\n",
		r.Params.Seed, r.Params.Agents, r.Params.Samples, r.Params.Eps, r.Params.T)
	fmt.Fprintf(&b, "%-14s %-4s %-6s %-6s %-4s %5s %7s %4s %7s\n",
		"regime", "C", "C^eps", "C^dia", "C^T", "runs", "points", "t*", "spread")
	yn := map[bool]string{true: "yes", false: "no"}
	for _, v := range r.Verdicts {
		spread := strconv.Itoa(v.Spread)
		if v.Spread < 0 {
			spread = "never"
		}
		fmt.Fprintf(&b, "%-14s %-4s %-6s %-6s %-4s %5d %7d %4d %7s\n",
			v.Regime, yn[v.C], yn[v.Ceps], yn[v.Cev], yn[v.Ct], v.Runs, v.Points, v.TStar, spread)
	}
	return b.String()
}

// LadderStep is one link of a regime's delivery announcement chain.
type LadderStep struct {
	// Deliveries is the announced lower bound on delivered messages.
	Deliveries int
	// Points is the surviving world count after the announcement.
	Points int
	// EDepth is the consecutive prefix of true E^k(sent) levels at the
	// witness point, up to the number of receivers.
	EDepth int
	// Common reports C(sent) at the witness point of the link model.
	Common bool
}

// Ladder replays the delivery announcement chain of a built regime on its
// epistemic structure: link d publicly announces "at least d messages were
// delivered", then batch-evaluates the E^k tower and C of the broadcast
// fact at the witness point. incremental selects the seeded re-refinement
// path of runs.Chain (the PR 4 machinery); verdicts are identical either
// way — the ablation benchmark measures exactly this toggle over a seeded
// sweep.
func (b *Built) Ladder(p Params, incremental bool) ([]LadderStep, error) {
	p = p.withDefaults()
	w := b.PM.World(b.WitnessIdx, b.TStar)
	ch := b.PM.Chain(1, incremental)
	ch.Mark(w)
	phi := logic.P(SentProp)
	maxDepth := p.Agents - 1
	var steps []LadderStep
	for d := 1; d <= maxDepth; d++ {
		del := logic.P(DeliveredProp(d))
		truthful, err := ch.Holds(del)
		if err != nil {
			return nil, err
		}
		if !truthful {
			break
		}
		if err := ch.Announce(del); err != nil {
			return nil, err
		}
		if ch.Marked() < 0 {
			return nil, fmt.Errorf("scenario: witness eliminated by the del>=%d announcement", d)
		}
		fs := make([]logic.Formula, 0, maxDepth+1)
		for lvl := 1; lvl <= maxDepth; lvl++ {
			fs = append(fs, logic.EK(nil, lvl, phi))
		}
		fs = append(fs, logic.C(nil, phi))
		sets, err := ch.EvalBatch(fs, kripke.BatchWorkers(p.Workers))
		if err != nil {
			return nil, err
		}
		step := LadderStep{Deliveries: d, Points: ch.NumWorlds()}
		marked := ch.Marked()
		for lvl := 0; lvl < maxDepth; lvl++ {
			if !sets[lvl].Contains(marked) {
				break
			}
			step.EDepth = lvl + 1
		}
		step.Common = sets[maxDepth].Contains(marked)
		steps = append(steps, step)
	}
	return steps, nil
}
