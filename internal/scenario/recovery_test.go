package scenario

import "testing"

// TestPostRecoveryMemoryIntact pins the crash regime's recovery semantics
// at the knowledge level (the ROADMAP's "what recovered processes can
// re-learn" follow-on): a processor that knew the broadcast fact when its
// crash window opened still knows it at the first post-recovery point —
// under the complete-history view, partitions only refine over time, so
// stable facts survive the outage with the processor's memory — while
// re-learning (down ignorant, knows after recovery) happens only through
// post-recovery deliveries, and some processors never learn at all
// (their deliveries fell into the window and were lost).
func TestPostRecoveryMemoryIntact(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		checks, err := PostRecoveryChecks(Params{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if len(checks) == 0 {
			t.Fatalf("seed %d: no crash windows sampled inside the horizon", seed)
		}
		knew, relearned, never := 0, 0, 0
		for _, c := range checks {
			if c.KnewAtCrash {
				knew++
				if !c.KnowsOnRecovery {
					t.Errorf("seed %d: run %s proc %d knew sent at crash start %d but not at recovery %d — memory lost",
						seed, c.Run, c.Proc, c.Start, c.End+1)
				}
				if c.Onset > c.Start {
					t.Errorf("seed %d: run %s proc %d: onset %d after a crash start %d it already knew at",
						seed, c.Run, c.Proc, c.Onset, c.Start)
				}
			}
			if c.Relearned {
				relearned++
				if c.Onset <= c.End {
					t.Errorf("seed %d: run %s proc %d marked relearned with onset %d inside the window ending %d",
						seed, c.Run, c.Proc, c.Onset, c.End)
				}
			}
			if c.Onset < 0 {
				never++
				if c.KnowsOnRecovery {
					t.Errorf("seed %d: run %s proc %d knows at recovery but has no onset", seed, c.Run, c.Proc)
				}
			}
		}
		// All three fates must actually occur, or the regime is not
		// exercising the recovery semantics it claims to.
		if knew == 0 || relearned == 0 || never == 0 {
			t.Errorf("seed %d: degenerate fate distribution: knew=%d relearned=%d never=%d of %d checks",
				seed, knew, relearned, never, len(checks))
		}
	}
}

// TestPostRecoveryDeterministic: equal seeds reproduce the checks exactly
// (the recovery sweep rides the same order-independent streams as the
// matrix).
func TestPostRecoveryDeterministic(t *testing.T) {
	a, err := PostRecoveryChecks(Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PostRecoveryChecks(Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("check counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("check %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
