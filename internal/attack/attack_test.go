package attack

import (
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/protocol"
	"repro/internal/runs"
)

func build(t *testing.T, budget int, horizon runs.Time) *System {
	t.Helper()
	s, err := Build(budget, horizon)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildRunCount(t *testing.T) {
	// Budget k over the unreliable channel: runs are "first loss at
	// message i" (i = 1..k) plus the all-delivered run, plus the idle run.
	s := build(t, 3, 8)
	if len(s.Sys.Runs) != 5 {
		t.Fatalf("budget 3: %d runs, want 5", len(s.Sys.Runs))
	}
	goRuns, idleRuns := 0, 0
	for _, r := range s.Sys.Runs {
		if strings.HasPrefix(r.Name, "go") {
			goRuns++
		} else {
			idleRuns++
			if len(r.Messages) != 0 {
				t.Errorf("idle run %s has messages", r.Name)
			}
		}
	}
	if goRuns != 4 || idleRuns != 1 {
		t.Errorf("go=%d idle=%d, want 4/1", goRuns, idleRuns)
	}
}

func TestNGConditionsHold(t *testing.T) {
	s := build(t, 2, 6)
	if err := protocol.CheckNG1(s.Sys); err != nil {
		t.Errorf("NG1: %v", err)
	}
	if err := protocol.CheckNG2(s.Sys); err != nil {
		t.Errorf("NG2: %v", err)
	}
}

func TestEvaluateRuleOutcomes(t *testing.T) {
	s := build(t, 3, 8)

	// "Never attack" is trivially correct and never attacks.
	never := func(protocol.LocalView) bool { return false }
	out := s.Evaluate(never, never)
	if !out.Simultaneous || !out.NoAttackWithoutComms || out.EverAttacks {
		t.Errorf("never-attack outcome = %+v", out)
	}

	// "Attack at time 5 unconditionally" is simultaneous but violates the
	// no-plans premise (attacks in the silent run).
	uncond := ThresholdRule(5, 0)
	out = s.Evaluate(uncond, uncond)
	if !out.Simultaneous {
		t.Errorf("unconditional attack should be simultaneous: %+v", out)
	}
	if out.NoAttackWithoutComms {
		t.Error("unconditional attack should violate the no-communication premise")
	}

	// "B attacks upon the first message, A attacks upon the first ack":
	// not simultaneous (and not even eventually coordinated: the ack can
	// be lost after B received the message... B attacks, A may not).
	out = s.Evaluate(EventRule(1), EventRule(1))
	if out.Simultaneous {
		t.Errorf("event rules should fail simultaneity: %+v", out)
	}
	if out.EventuallyCoordinated {
		t.Error("event rules should fail eventual coordination")
	}
}

func TestCorollary6(t *testing.T) {
	s := build(t, 3, 8)
	rep, err := s.CheckCorollary6()
	if err != nil {
		t.Fatalf("Corollary 6 violated: %v", err)
	}
	if rep.RulesTried == 0 || rep.CorrectRules == 0 {
		t.Fatalf("degenerate search: %+v", rep)
	}
	if rep.AttackingAmongCorrect != 0 {
		t.Errorf("correct attacking rules found: %+v", rep)
	}
	t.Logf("Corollary 6: %d rule pairs tried, %d correct, all non-attacking", rep.RulesTried, rep.CorrectRules)
}

func TestProposition10(t *testing.T) {
	s := build(t, 3, 8)
	rep, err := s.CheckProposition10()
	if err != nil {
		t.Fatalf("Proposition 10 violated: %v", err)
	}
	if rep.CorrectRules == 0 {
		t.Fatalf("degenerate search: %+v", rep)
	}
}

func TestProposition4OnUnreliableSystem(t *testing.T) {
	// With the never-attack rule (the only correct one), attacking is
	// false everywhere and Proposition 4 holds vacuously.
	s := build(t, 2, 6)
	never := func(protocol.LocalView) bool { return false }
	pm := s.Sys.Model(runs.CompleteHistoryView, s.Interp(never, never))
	if err := CheckProposition4(pm); err != nil {
		t.Error(err)
	}
}

func TestProposition4OnReliableSystem(t *testing.T) {
	// Over a reliable channel a correct attacking protocol exists:
	// A attacks at time 3 if in favor; B attacks at time 3 if it received
	// the initiation. Proposition 4 then shows C attacking at the attack
	// points.
	s, err := ReliableSystem(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	ruleA := func(v protocol.LocalView) bool {
		return v.HasClock && v.Clock >= 3 && v.Init == "go"
	}
	ruleB := ThresholdRule(3, 1)
	out := s.Evaluate(ruleA, ruleB)
	if !out.Simultaneous || !out.NoAttackWithoutComms {
		t.Fatalf("reliable-channel protocol should be correct: %+v", out)
	}
	if !out.EverAttacks {
		t.Fatal("reliable-channel protocol should attack in the go runs")
	}
	pm := s.Sys.Model(runs.CompleteHistoryView, s.Interp(ruleA, ruleB))
	if err := CheckProposition4(pm); err != nil {
		t.Error(err)
	}
	// And the attack is indeed commonly known at the attack point of a go
	// run.
	g := logic.NewGroup(GeneralA, GeneralB)
	var goRun string
	for _, r := range s.Sys.Runs {
		if r.Init[GeneralA] == "go" {
			goRun = r.Name
			break
		}
	}
	ok, err := pm.HoldsAt(logic.C(g, logic.P(AttackingProp)), goRun, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("C attacking should hold at the attack point on the reliable channel")
	}
}

func TestAlternatingKnowledgeDepthEqualsDeliveries(t *testing.T) {
	// Section 4/7: each delivered message adds one level of alternating
	// knowledge of A's intent; no correct protocol can do better.
	s := build(t, 4, 10)
	never := func(protocol.LocalView) bool { return false }
	pm := s.Sys.Model(runs.CompleteHistoryView, s.Interp(never, never))

	for ri, r := range s.Sys.Runs {
		if r.Init[GeneralA] != "go" {
			continue
		}
		d := 0
		for _, m := range r.Messages {
			if m.Delivered() {
				d++
			}
		}
		// Depth-d alternating knowledge holds at the end; depth-(d+1)
		// does not. Message i is received by B for odd i, A for even i.
		f := logic.P(IntentProp)
		for i := 1; i <= d; i++ {
			if i%2 == 1 {
				f = logic.K(GeneralB, f)
			} else {
				f = logic.K(GeneralA, f)
			}
		}
		end := pm.World(ri, s.Sys.Horizon)
		if d > 0 {
			set, err := pm.Eval(f)
			if err != nil {
				t.Fatal(err)
			}
			if !set.Contains(end) {
				t.Errorf("run %s (d=%d): depth-%d knowledge missing", r.Name, d, d)
			}
		}
		var next logic.Formula
		if d%2 == 0 {
			next = logic.K(GeneralB, f)
		} else {
			next = logic.K(GeneralA, f)
		}
		set, err := pm.Eval(next)
		if err != nil {
			t.Fatal(err)
		}
		if set.Contains(end) {
			t.Errorf("run %s (d=%d): depth-%d knowledge unexpectedly holds", r.Name, d, d+1)
		}
	}
}

func TestCommonKnowledgeOfIntentUnattainable(t *testing.T) {
	s := build(t, 3, 8)
	never := func(protocol.LocalView) bool { return false }
	pm := s.Sys.Model(runs.CompleteHistoryView, s.Interp(never, never))
	set, err := pm.Eval(logic.MustParse("C intent"))
	if err != nil {
		t.Fatal(err)
	}
	if !set.IsEmpty() {
		t.Errorf("C intent should be unattainable, holds at %s", set)
	}
	// Theorem 5 holds on this system.
	if _, err := protocol.CheckTheorem5(pm, nil, []logic.Formula{logic.P(IntentProp), logic.P(AttackingProp)}); err != nil {
		t.Errorf("Theorem 5: %v", err)
	}
}

func TestEventualDepthWithoutEventualCommonKnowledge(t *testing.T) {
	// Section 11's counterexample: in the all-delivered run, (E^⋄)^k intent
	// holds for every k the budget supports, yet C^⋄ intent never holds.
	s := build(t, 4, 10)
	never := func(protocol.LocalView) bool { return false }
	pm := s.Sys.Model(runs.CompleteHistoryView, s.Interp(never, never))

	// Find the all-delivered go run.
	var best string
	bestD := -1
	for _, r := range s.Sys.Runs {
		d := 0
		for _, m := range r.Messages {
			if m.Delivered() {
				d++
			}
		}
		if r.Init[GeneralA] == "go" && d > bestD {
			bestD = d
			best = r.Name
		}
	}
	if bestD != 4 {
		t.Fatalf("all-delivered run has %d deliveries, want 4", bestD)
	}
	depth, err := MaxEventualDepth(pm, best, 8)
	if err != nil {
		t.Fatal(err)
	}
	if depth < 3 {
		t.Errorf("(E^⋄)^k intent depth = %d, want >= 3", depth)
	}
	cv, err := pm.Eval(logic.MustParse("Cv intent"))
	if err != nil {
		t.Fatal(err)
	}
	if !cv.IsEmpty() {
		t.Errorf("Cv intent should fail everywhere, holds at %s", cv)
	}
}

func BenchmarkCorollary6(b *testing.B) {
	s, err := Build(3, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.CheckCorollary6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildAttackSystem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Build(4, 10); err != nil {
			b.Fatal(err)
		}
	}
}
