// Package attack implements the coordinated attack problem of Sections 4
// and 7 of Halpern & Moses (after Gray 1978): two generals communicating
// through a messenger who may be captured must attack simultaneously or not
// at all.
//
// Generals are processors (A = 0, B = 1) running the handshake protocol of
// Section 4 over an unreliable channel; general A initiates only in
// configurations where it is in favor of attacking. Attack decisions are
// decision rules — deterministic functions of the local view — layered on
// the generated system. The package machine-checks:
//
//   - Proposition 4: in a correct protocol, whenever the generals attack,
//     "both generals are attacking" is common knowledge.
//   - Corollary 6: over an exhaustive family of decision rules, every rule
//     pair that satisfies the problem constraints (simultaneity; no attack
//     without successful communication) never attacks.
//   - Proposition 10: the same with simultaneity weakened to "if one
//     attacks, the other eventually attacks".
//   - The Section 4/7 observation that d delivered messages produce exactly
//     d levels of alternating knowledge of the attack intent.
package attack

import (
	"fmt"
	"strconv"

	"repro/internal/faults"
	"repro/internal/kripke"
	"repro/internal/logic"
	"repro/internal/protocol"
	"repro/internal/runs"
)

// General indices.
const (
	GeneralA = 0
	GeneralB = 1
)

// IntentProp is the ground fact "general A is in favor of attacking".
const IntentProp = "intent"

// AttackingProp is the ground fact "both generals are attacking".
const AttackingProp = "attacking"

// System is a generated coordinated-attack system plus bookkeeping.
type System struct {
	Sys *runs.System
	// Budget is the maximum number of handshake messages per run.
	Budget int

	// views caches each general's view timeline per run, so the exhaustive
	// rule searches (thousands of rule pairs over the same runs) replay
	// precomputed views instead of reconstructing each local history per
	// (rule, run, time) probe.
	views [][2]*protocol.Timeline
}

// timelines returns the per-(run, general) view timelines, built on first
// use.
func (s *System) timelines() [][2]*protocol.Timeline {
	if s.views == nil {
		s.views = make([][2]*protocol.Timeline, len(s.Sys.Runs))
		for ri, r := range s.Sys.Runs {
			s.views[ri] = [2]*protocol.Timeline{
				protocol.NewTimeline(r, GeneralA),
				protocol.NewTimeline(r, GeneralB),
			}
		}
	}
	return s.views
}

// attackTime is AttackTime over the cached timeline of run ri.
func (s *System) attackTime(tl [][2]*protocol.Timeline, ri, g int, rule DecisionRule) runs.Time {
	r := s.Sys.Runs[ri]
	for t := runs.Time(0); t <= r.Horizon; t++ {
		if rule(tl[ri][g].At(t)) {
			return t
		}
	}
	return runs.Lost
}

// handshakeProtocols returns the generals' messenger protocol: A initiates
// the handshake if in favor, and each side acknowledges every received
// message with the next message in the chain. The message budget is
// enforced by the generator.
func handshakeProtocols() []protocol.Protocol {
	step := func(v protocol.LocalView) []protocol.Outgoing {
		peer := 1 - v.Me
		if v.Me == GeneralA && v.Init == "go" && len(v.Sent) == 0 && len(v.Received) == 0 {
			return []protocol.Outgoing{{To: peer, Payload: "msg1"}}
		}
		if len(v.Received) == 0 {
			return nil
		}
		// Reply once per received message.
		replies := len(v.Sent)
		if v.Me == GeneralA && v.Init == "go" {
			replies-- // A's first send was the initiation, not a reply
		}
		if replies < len(v.Received) {
			n := len(v.Received) + len(v.Sent) + 1
			return []protocol.Outgoing{{To: peer, Payload: fmt.Sprintf("msg%d", n)}}
		}
		return nil
	}
	return []protocol.Protocol{protocol.Func(step), protocol.Func(step)}
}

// Build generates the coordinated-attack system: the handshake with the
// given message budget over an unreliable unit-delay channel, from the two
// initial configurations (A in favor / not in favor), with identity clocks
// (so decision rules may be time-based), observed up to the horizon.
func Build(budget int, horizon runs.Time) (*System, error) {
	cfgs := []protocol.Config{
		{Name: "go", Init: []string{"go", ""}, Clock: []int{0, 0}},
		{Name: "idle", Init: []string{"", ""}, Clock: []int{0, 0}},
	}
	sys, err := protocol.Generate(handshakeProtocols(), protocol.Unreliable{Delay: 1}, cfgs,
		horizon, protocol.Options{MaxMessagesPerRun: budget})
	if err != nil {
		return nil, fmt.Errorf("attack: %w", err)
	}
	return &System{Sys: sys, Budget: budget}, nil
}

// BuildInjected samples the coordinated-attack system under a seeded fault
// plan instead of branching exhaustively over the unreliable channel: the
// same handshake, but each run's message fates — delay, loss, duplication,
// crash windows — are drawn from the plan's streams by the virtual-clock
// simulation engine. The sampled system supports the same rule searches and
// knowledge checks as the generated one, which makes the unattainability
// results reproducible by injection: any plan with loss in it keeps every
// correct rule pair from ever attacking, exactly as Corollary 6 demands of
// the exhaustive system. Equal arguments produce a byte-identical system.
func BuildInjected(budget int, horizon runs.Time, plan *faults.Plan, samplesPerConfig int) (*System, error) {
	cfgs := []protocol.Config{
		{Name: "go", Init: []string{"go", ""}, Clock: []int{0, 0}},
		{Name: "idle", Init: []string{"", ""}, Clock: []int{0, 0}},
	}
	sys, err := protocol.SampleSystem(handshakeProtocols(), plan, cfgs,
		samplesPerConfig, horizon, protocol.Options{MaxMessagesPerRun: budget})
	if err != nil {
		return nil, fmt.Errorf("attack: %w", err)
	}
	return &System{Sys: sys, Budget: budget}, nil
}

// DecisionRule decides, from a general's local view, whether to attack now.
// The general attacks at the first instant the rule fires.
type DecisionRule func(v protocol.LocalView) bool

// AttackTime returns the first time the rule fires for general g in run r,
// or runs.Lost if it never does.
func AttackTime(r *runs.Run, g int, rule DecisionRule) runs.Time {
	for t := runs.Time(0); t <= r.Horizon; t++ {
		if rule(protocol.ViewAt(r, g, t)) {
			return t
		}
	}
	return runs.Lost
}

// RuleOutcome is the verdict on a decision-rule pair.
type RuleOutcome struct {
	// Simultaneous: in every run, either both generals attack at the same
	// time or neither ever attacks.
	Simultaneous bool
	// EventuallyCoordinated: in every run, if one general attacks then the
	// other (eventually) attacks too.
	EventuallyCoordinated bool
	// NoAttackWithoutComms: in runs where no messages are delivered,
	// neither general attacks (the problem's "no initial plans" premise).
	NoAttackWithoutComms bool
	// EverAttacks: some run has an attack.
	EverAttacks bool
	// Violation describes the first constraint violation found.
	Violation string
}

// Evaluate checks a decision-rule pair against every run of the system.
func (s *System) Evaluate(ruleA, ruleB DecisionRule) RuleOutcome {
	out := RuleOutcome{Simultaneous: true, EventuallyCoordinated: true, NoAttackWithoutComms: true}
	tl := s.timelines()
	for ri, r := range s.Sys.Runs {
		ta := s.attackTime(tl, ri, GeneralA, ruleA)
		tb := s.attackTime(tl, ri, GeneralB, ruleB)
		if ta != runs.Lost || tb != runs.Lost {
			out.EverAttacks = true
		}
		if ta != tb && out.Simultaneous {
			out.Simultaneous = false
			out.Violation = fmt.Sprintf("run %s: A attacks at %d, B at %d", r.Name, ta, tb)
		}
		if (ta == runs.Lost) != (tb == runs.Lost) && out.EventuallyCoordinated {
			out.EventuallyCoordinated = false
			if out.Violation == "" {
				out.Violation = fmt.Sprintf("run %s: one general attacks alone", r.Name)
			}
		}
		if r.DeliveredBefore(r.Horizon+1) == 0 && (ta != runs.Lost || tb != runs.Lost) {
			out.NoAttackWithoutComms = false
			if out.Violation == "" {
				out.Violation = fmt.Sprintf("run %s: attack without any successful communication", r.Name)
			}
		}
	}
	return out
}

// ThresholdRule returns the decision rule "attack at clock time T if at
// least j messages have been received by then".
func ThresholdRule(attackAt int, minReceived int) DecisionRule {
	return func(v protocol.LocalView) bool {
		return v.HasClock && v.Clock >= attackAt && len(v.Received) >= minReceived
	}
}

// EventRule returns the decision rule "attack as soon as at least j
// messages have been received".
func EventRule(minReceived int) DecisionRule {
	return func(v protocol.LocalView) bool {
		return len(v.Received) >= minReceived
	}
}

// Corollary6Report summarizes the exhaustive rule search.
type Corollary6Report struct {
	RulesTried            int
	CorrectRules          int // satisfy simultaneity + no-attack-without-comms
	AttackingAmongCorrect int // correct rules that ever attack (must be 0)
}

// CheckCorollary6 exhaustively evaluates all threshold rule pairs
// (attack times up to the horizon, thresholds up to the budget) and
// verifies Corollary 6: every pair satisfying the problem constraints never
// attacks.
func (s *System) CheckCorollary6() (Corollary6Report, error) {
	var rep Corollary6Report
	horizon := int(s.Sys.Horizon)
	for ta := 0; ta <= horizon; ta++ {
		for ja := 0; ja <= s.Budget; ja++ {
			for tb := 0; tb <= horizon; tb++ {
				for jb := 0; jb <= s.Budget; jb++ {
					rep.RulesTried++
					out := s.Evaluate(ThresholdRule(ta, ja), ThresholdRule(tb, jb))
					if out.Simultaneous && out.NoAttackWithoutComms {
						rep.CorrectRules++
						if out.EverAttacks {
							rep.AttackingAmongCorrect++
							return rep, fmt.Errorf(
								"attack: Corollary 6 violated by rules (T=%d,j=%d)/(T=%d,j=%d)", ta, ja, tb, jb)
						}
					}
				}
			}
		}
	}
	return rep, nil
}

// CheckProposition10 does the same for the weakened requirement of
// Proposition 10 (eventual coordination instead of simultaneity), over
// event-driven rules.
func (s *System) CheckProposition10() (Corollary6Report, error) {
	var rep Corollary6Report
	for ja := 0; ja <= s.Budget+1; ja++ {
		for jb := 0; jb <= s.Budget+1; jb++ {
			rep.RulesTried++
			out := s.Evaluate(EventRule(ja), EventRule(jb))
			if out.EventuallyCoordinated && out.NoAttackWithoutComms {
				rep.CorrectRules++
				if out.EverAttacks {
					rep.AttackingAmongCorrect++
					return rep, fmt.Errorf("attack: Proposition 10 violated by rules j=%d/j=%d", ja, jb)
				}
			}
		}
	}
	return rep, nil
}

// Interp returns the standard interpretation for attack systems, with the
// attacking fact induced by the given decision rules: "attacking" holds at
// (r, t) iff both generals have attacked by t (stable, as the divisions
// stay committed once they attack).
func (s *System) Interp(ruleA, ruleB DecisionRule) runs.Interpretation {
	tl := s.timelines()
	attackTimes := make(map[string][2]runs.Time, len(s.Sys.Runs))
	for ri, r := range s.Sys.Runs {
		attackTimes[r.Name] = [2]runs.Time{
			s.attackTime(tl, ri, GeneralA, ruleA),
			s.attackTime(tl, ri, GeneralB, ruleB),
		}
	}
	return runs.Interpretation{
		IntentProp: func(r *runs.Run, _ runs.Time) bool { return r.Init[GeneralA] == "go" },
		AttackingProp: func(r *runs.Run, t runs.Time) bool {
			at := attackTimes[r.Name]
			return at[0] != runs.Lost && at[1] != runs.Lost && t >= at[0] && t >= at[1]
		},
	}
}

// DeliveredProp returns the ground-fact name for "at least d messages have
// been delivered".
func DeliveredProp(d int) string { return "del" + strconv.Itoa(d) }

// DeliveryInterp extends Interp with the delivery-count facts
// DeliveredProp(1..Budget): "del d" holds at a point (r, t) iff at least d
// messages of the handshake have been delivered by time t. The counts are
// read in O(1) off the precomputed view timelines (a delivery is a receive
// event of one of the generals), not by rescanning the message list per
// point. Point models built with this interpretation support the
// delivery-chain replay of ReplayDeliveryChain.
func (s *System) DeliveryInterp(ruleA, ruleB DecisionRule) runs.Interpretation {
	interp := s.Interp(ruleA, ruleB)
	tl := s.timelines()
	idx := make(map[*runs.Run]int, len(s.Sys.Runs))
	for ri, r := range s.Sys.Runs {
		idx[r] = ri
	}
	for d := 1; d <= s.Budget; d++ {
		d := d
		interp[DeliveredProp(d)] = func(r *runs.Run, t runs.Time) bool {
			pair := tl[idx[r]]
			return pair[GeneralA].ReceivedBefore(t+1)+pair[GeneralB].ReceivedBefore(t+1) >= d
		}
	}
	return interp
}

// BestChainRun returns the name of the initiated run with the most
// delivered messages — the all-delivered handshake, the natural marked
// point of a delivery announcement chain.
func (s *System) BestChainRun() string {
	best, bestD := "", -1
	for _, r := range s.Sys.Runs {
		if r.Init[GeneralA] != "go" {
			continue
		}
		d := 0
		for _, m := range r.Messages {
			if m.Delivered() {
				d++
			}
		}
		if d > bestD {
			best, bestD = r.Name, d
		}
	}
	return best
}

// ChainStep records one link of the delivery announcement chain.
type ChainStep struct {
	// Deliveries is the lower bound just announced ("at least d messages
	// were delivered").
	Deliveries int
	// Points and QuotientWorlds are the surviving point count and the size
	// of the model the link's queries actually evaluated on.
	Points         int
	QuotientWorlds int
	// Depth is the alternating-knowledge depth of the attack intent at the
	// marked point after the announcement (K_B intent, K_A K_B intent, …).
	Depth int
	// Common reports whether C{A,B} intent holds at the marked point.
	Common bool
}

// ReplayDeliveryChain replays the coordinated-attack message chain of
// Sections 4 and 7 as a public-announcement chain on a point model built
// with DeliveryInterp: link d announces DeliveredProp(d), mirroring the
// generals' handshake one delivered message at a time, and records the
// alternating-knowledge depth of the intent and whether it has become
// common knowledge at the marked point (runName at the horizon). The chain
// stops before the first announcement that would be untruthful there.
// incremental selects the seeded restriction path of runs.Chain; the
// verdicts are identical either way (pinned by the package tests), only
// the per-link cost differs. Trailing kripke.BatchOptions (e.g.
// kripke.BatchWorkers) configure each link's batch evaluation.
func (s *System) ReplayDeliveryChain(pm *runs.PointModel, runName string, incremental bool, opts ...kripke.BatchOption) ([]ChainStep, error) {
	w, err := pm.WorldOf(runName, s.Sys.Horizon)
	if err != nil {
		return nil, err
	}
	ch := pm.Chain(1, incremental)
	ch.Mark(w)
	g := logic.NewGroup(GeneralA, GeneralB)
	var steps []ChainStep
	for d := 1; d <= s.Budget; d++ {
		del := logic.P(DeliveredProp(d))
		truthful, err := ch.Holds(del)
		if err != nil {
			return nil, err
		}
		if !truthful {
			break
		}
		if err := ch.Announce(del); err != nil {
			return nil, err
		}
		step := ChainStep{Deliveries: d, Points: ch.NumWorlds(), QuotientWorlds: ch.QuotientWorlds()}
		marked := ch.Marked()
		if marked < 0 {
			return nil, fmt.Errorf("attack: marked point eliminated by the del>=%d announcement", d)
		}
		// The link's verdicts — the alternating-knowledge tower and the
		// common-knowledge check — are one batch of independent queries
		// against the link model; the recorded depth is the consecutive
		// prefix of true tower levels, the same value the old one-at-a-time
		// loop stopped at.
		fs := make([]logic.Formula, 0, s.Budget+2)
		f := logic.P(IntentProp)
		for lvl := 1; lvl <= s.Budget+1; lvl++ {
			if lvl%2 == 1 {
				f = logic.K(GeneralB, f)
			} else {
				f = logic.K(GeneralA, f)
			}
			fs = append(fs, f)
		}
		fs = append(fs, logic.C(g, logic.P(IntentProp)))
		sets, err := ch.EvalBatch(fs, opts...)
		if err != nil {
			return nil, err
		}
		for lvl := 1; lvl <= s.Budget+1; lvl++ {
			if !sets[lvl-1].Contains(marked) {
				break
			}
			step.Depth = lvl
		}
		step.Common = sets[s.Budget+1].Contains(marked)
		steps = append(steps, step)
	}
	return steps, nil
}

// ReliableSystem builds the guaranteed-communication variant: the same
// handshake over a reliable unit-delay channel. Here a correct attacking
// protocol exists, and Proposition 4's conclusion — attack implies common
// knowledge of the attack — is observable positively.
func ReliableSystem(budget int, horizon runs.Time) (*System, error) {
	cfgs := []protocol.Config{
		{Name: "go", Init: []string{"go", ""}, Clock: []int{0, 0}},
		{Name: "idle", Init: []string{"", ""}, Clock: []int{0, 0}},
	}
	sys, err := protocol.Generate(handshakeProtocols(), protocol.Reliable{Delay: 1}, cfgs,
		horizon, protocol.Options{MaxMessagesPerRun: budget})
	if err != nil {
		return nil, fmt.Errorf("attack: %w", err)
	}
	return &System{Sys: sys, Budget: budget}, nil
}

// CheckProposition4 verifies on a point model built from the system (with
// the attacking interpretation) that attacking ⊃ C{A,B} attacking is valid.
func CheckProposition4(pm *runs.PointModel) error {
	g := logic.NewGroup(GeneralA, GeneralB)
	valid, err := pm.Valid(logic.Imp(logic.P(AttackingProp), logic.C(g, logic.P(AttackingProp))))
	if err != nil {
		return err
	}
	if !valid {
		return fmt.Errorf("attack: Proposition 4 violated: attacking without common knowledge of it")
	}
	return nil
}

// MaxEventualDepth returns the largest j such that (E^⋄)^j intent holds at
// (run, 0) on the given model, up to maxJ — used for the Section 11
// counterexample: the infinite conjunction of (E^⋄)^k holds in the
// all-delivered run while C^⋄ intent fails.
func MaxEventualDepth(pm *runs.PointModel, runName string, maxJ int) (int, error) {
	depth := 0
	f := logic.P(IntentProp)
	for j := 1; j <= maxJ; j++ {
		f = logic.Eev(nil, f)
		ok, err := pm.HoldsAt(f, runName, 0)
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		depth = j
	}
	return depth, nil
}
