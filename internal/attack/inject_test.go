package attack

import (
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/kripke"
	"repro/internal/protocol"
	"repro/internal/runs"
)

func TestBuildInjectedByteIdentical(t *testing.T) {
	plan := &faults.Plan{Seed: 11, Delay: faults.Fixed{D: 1}, Drop: 0.5}
	build := func() *System {
		s, err := BuildInjected(4, 10, plan, 8)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1, s2 := build(), build()
	if len(s1.Sys.Runs) != len(s2.Sys.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(s1.Sys.Runs), len(s2.Sys.Runs))
	}
	for i := range s1.Sys.Runs {
		if s1.Sys.Runs[i].Name != s2.Sys.Runs[i].Name ||
			s1.Sys.Runs[i].Fingerprint() != s2.Sys.Runs[i].Fingerprint() {
			t.Fatalf("run %d differs between identically seeded builds", i)
		}
	}
}

// TestBuildInjectedFaultFreeMatchesReliable pins the engine against the
// exhaustive generator: under a degenerate plan (fixed unit delay, no
// faults) the sampled handshake collapses to exactly the runs of
// ReliableSystem, message for message.
func TestBuildInjectedFaultFreeMatchesReliable(t *testing.T) {
	plan := &faults.Plan{Seed: 1, Delay: faults.Fixed{D: 1}}
	inj, err := BuildInjected(4, 10, plan, 3)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := ReliableSystem(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(inj.Sys.Runs) != len(rel.Sys.Runs) {
		t.Fatalf("injected %d runs, reliable %d", len(inj.Sys.Runs), len(rel.Sys.Runs))
	}
	want := map[string]bool{}
	for _, r := range rel.Sys.Runs {
		want[r.Fingerprint()] = true
	}
	for _, r := range inj.Sys.Runs {
		if !want[r.Fingerprint()] {
			t.Fatalf("sampled run %s has no counterpart in the reliable system", r.Name)
		}
	}
}

// TestInjectedLossKeepsCorollary6 is unattainability by injection: the
// handshake's fate space under a drop plan is finite (a prefix of delivered
// messages followed by a loss), so enough samples reconstruct exactly the
// runs of the exhaustive unreliable channel — and over that injected
// system, every threshold rule pair satisfying the problem constraints
// still never attacks. (An under-sampled system can miss the separating
// run and let a bad rule pair through; the fingerprint equality below is
// what licenses the Corollary 6 claim on samples.)
func TestInjectedLossKeepsCorollary6(t *testing.T) {
	ex, err := Build(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	exFp := map[string]bool{}
	for _, r := range ex.Sys.Runs {
		exFp[r.Fingerprint()] = true
	}
	plan := &faults.Plan{Seed: 5, Delay: faults.Fixed{D: 1}, Drop: 0.5}
	s, err := BuildInjected(3, 8, plan, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Sys.Runs) != len(ex.Sys.Runs) {
		t.Fatalf("injected %d distinct runs, exhaustive %d", len(s.Sys.Runs), len(ex.Sys.Runs))
	}
	for _, r := range s.Sys.Runs {
		if !exFp[r.Fingerprint()] {
			t.Fatalf("sampled run %s has no counterpart in the exhaustive system", r.Name)
		}
	}
	rep, err := s.CheckCorollary6()
	if err != nil {
		t.Fatal(err)
	}
	if rep.CorrectRules == 0 {
		t.Fatal("no rule pair satisfied the constraints; the search is vacuous")
	}
	if rep.AttackingAmongCorrect != 0 {
		t.Fatalf("%d correct rule pairs attack under injected loss", rep.AttackingAmongCorrect)
	}
}

// TestInjectedChainReplayParallelMatchesSerial replays the delivery
// announcement chain of an injected system with and without a batch worker
// pool: the steps must be identical (the chain's verdicts are
// batch-deterministic).
func TestInjectedChainReplayParallelMatchesSerial(t *testing.T) {
	plan := &faults.Plan{Seed: 3, Delay: faults.Fixed{D: 1}, Drop: 0.3}
	s, err := BuildInjected(4, 10, plan, 8)
	if err != nil {
		t.Fatal(err)
	}
	never := func(protocol.LocalView) bool { return false }
	pm := s.Sys.Model(runs.CompleteHistoryView, s.DeliveryInterp(never, never))
	best := s.BestChainRun()
	serial, err := s.ReplayDeliveryChain(pm, best, true)
	if err != nil {
		t.Fatal(err)
	}
	par, err := s.ReplayDeliveryChain(pm, best, true, kripke.BatchWorkers(0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("parallel chain %+v differs from serial %+v", par, serial)
	}
	if len(serial) == 0 {
		t.Fatal("best run replayed an empty chain")
	}
}
