package attack

import (
	"testing"

	"repro/internal/protocol"
	"repro/internal/runs"
)

// bestRun is System.BestChainRun with a fatal check for test use.
func bestRun(t *testing.T, s *System) string {
	t.Helper()
	best := s.BestChainRun()
	if best == "" {
		t.Fatal("no initiated run")
	}
	return best
}

// TestReplayDeliveryChainDeepensKnowledge checks the Section 4/7 reading of
// the chain replay: publicly announcing "at least d messages were
// delivered" prunes exactly the points the generals could not distinguish
// on their own, monotonically deepening knowledge of the intent at the
// all-delivered point. The contrast with the handshake itself is sharp:
// already the first announcement eliminates every intent-free point (only
// initiated runs deliver messages), so the intent becomes common knowledge
// at once — the public announcement achieves in one link what Section 4
// proves no number of delivered messages can.
func TestReplayDeliveryChainDeepensKnowledge(t *testing.T) {
	s := build(t, 4, 10)
	never := func(protocol.LocalView) bool { return false }
	pm := s.Sys.Model(runs.CompleteHistoryView, s.DeliveryInterp(never, never))

	steps, err := s.ReplayDeliveryChain(pm, bestRun(t, s), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != s.Budget {
		t.Fatalf("chain has %d links, want %d (all announcements truthful in the all-delivered run)",
			len(steps), s.Budget)
	}
	prevDepth, prevPoints := -1, pm.NumWorlds()+1
	for _, st := range steps {
		if st.Depth < prevDepth {
			t.Errorf("depth fell from %d to %d at link %d", prevDepth, st.Depth, st.Deliveries)
		}
		if st.Points >= prevPoints {
			t.Errorf("announcement %d did not prune any point (%d -> %d)",
				st.Deliveries, prevPoints, st.Points)
		}
		if st.Depth < st.Deliveries {
			t.Errorf("link %d: depth %d below the announced delivery count", st.Deliveries, st.Depth)
		}
		if !st.Common {
			t.Errorf("link %d: intent not common knowledge after the public delivery announcement",
				st.Deliveries)
		}
		prevDepth, prevPoints = st.Depth, st.Points
	}
}

// TestReplayDeliveryChainIncrementalMatchesScratch pins the incremental
// chain path to the from-scratch one, step for step.
func TestReplayDeliveryChainIncrementalMatchesScratch(t *testing.T) {
	s := build(t, 4, 10)
	never := func(protocol.LocalView) bool { return false }
	run := bestRun(t, s)

	pmInc := s.Sys.Model(runs.CompleteHistoryView, s.DeliveryInterp(never, never))
	inc, err := s.ReplayDeliveryChain(pmInc, run, true)
	if err != nil {
		t.Fatal(err)
	}
	pmScr := s.Sys.Model(runs.CompleteHistoryView, s.DeliveryInterp(never, never))
	scr, err := s.ReplayDeliveryChain(pmScr, run, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(inc) != len(scr) {
		t.Fatalf("incremental chain has %d links, from-scratch %d", len(inc), len(scr))
	}
	for i := range inc {
		if inc[i] != scr[i] {
			t.Errorf("link %d diverged: incremental %+v, from-scratch %+v", i+1, inc[i], scr[i])
		}
	}
}

// TestDeliveryInterpMatchesRunCounts cross-checks the timeline-based
// delivery facts against the run's own message list.
func TestDeliveryInterpMatchesRunCounts(t *testing.T) {
	s := build(t, 3, 8)
	never := func(protocol.LocalView) bool { return false }
	interp := s.DeliveryInterp(never, never)
	for _, r := range s.Sys.Runs {
		for tt := runs.Time(0); tt <= r.Horizon; tt++ {
			want := 0
			for _, m := range r.Messages {
				if m.Delivered() && m.RecvTime <= tt {
					want++
				}
			}
			for d := 1; d <= s.Budget; d++ {
				if got := interp[DeliveredProp(d)](r, tt); got != (want >= d) {
					t.Fatalf("run %s t=%d: %s = %v, want %v (deliveries=%d)",
						r.Name, tt, DeliveredProp(d), got, want >= d, want)
				}
			}
		}
	}
}
