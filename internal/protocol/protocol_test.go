package protocol

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/runs"
)

// oneShot sends a single message "m" from p0 to p1 at the first instant.
func oneShot() []Protocol {
	sender := Func(func(v LocalView) []Outgoing {
		if len(v.Sent) == 0 {
			return []Outgoing{{To: 1, Payload: "m"}}
		}
		return nil
	})
	return []Protocol{sender, Silent}
}

// handshake returns the two-party handshake of Section 4: p0 initiates, and
// each party answers a received message with the next message in the chain,
// as long as the chain is below the budget enforced by MaxMessagesPerRun.
func handshake() []Protocol {
	step := func(v LocalView) []Outgoing {
		peer := 1 - v.Me
		switch {
		case v.Me == 0 && len(v.Sent) == 0 && len(v.Received) == 0:
			return []Outgoing{{To: peer, Payload: "hs1"}}
		case len(v.Received) > 0:
			last := v.Received[len(v.Received)-1].Payload
			n, err := strconv.Atoi(strings.TrimPrefix(last, "hs"))
			if err != nil {
				return nil
			}
			// Reply once per received message.
			replies := 0
			for _, s := range v.Sent {
				if s.Payload != "hs1" || v.Me != 0 {
					replies++
				}
			}
			if v.Me == 0 {
				// p0 sent hs1 plus one reply per received message.
				if len(v.Sent)-1 < len(v.Received) {
					return []Outgoing{{To: peer, Payload: "hs" + strconv.Itoa(n+1)}}
				}
			} else if len(v.Sent) < len(v.Received) {
				return []Outgoing{{To: peer, Payload: "hs" + strconv.Itoa(n+1)}}
			}
		}
		return nil
	}
	return []Protocol{Func(step), Func(step)}
}

func twoProcConfig() []Config {
	return []Config{{Name: "cfg", Init: []string{"", ""}}}
}

func TestGenerateSilent(t *testing.T) {
	sys, err := Generate([]Protocol{Silent, Silent}, Unreliable{Delay: 1}, twoProcConfig(), 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Runs) != 1 {
		t.Fatalf("silent protocols generated %d runs, want 1", len(sys.Runs))
	}
	if len(sys.Runs[0].Messages) != 0 {
		t.Error("silent run has messages")
	}
}

func TestGenerateOneShotUnreliable(t *testing.T) {
	sys, err := Generate(oneShot(), Unreliable{Delay: 1}, twoProcConfig(), 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Runs) != 2 {
		t.Fatalf("one-shot over unreliable channel: %d runs, want 2 (delivered, lost)", len(sys.Runs))
	}
	delivered, lost := 0, 0
	for _, r := range sys.Runs {
		if len(r.Messages) != 1 {
			t.Fatalf("run %s has %d messages, want 1", r.Name, len(r.Messages))
		}
		if r.Messages[0].Delivered() {
			delivered++
			if r.Messages[0].RecvTime != 1 {
				t.Errorf("delivery at %d, want 1", r.Messages[0].RecvTime)
			}
		} else {
			lost++
		}
	}
	if delivered != 1 || lost != 1 {
		t.Errorf("delivered=%d lost=%d, want 1/1", delivered, lost)
	}
}

func TestGenerateOneShotReliable(t *testing.T) {
	sys, err := Generate(oneShot(), Reliable{Delay: 2}, twoProcConfig(), 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Runs) != 1 {
		t.Fatalf("reliable channel: %d runs, want 1", len(sys.Runs))
	}
	m := sys.Runs[0].Messages[0]
	if !m.Delivered() || m.RecvTime != 2 {
		t.Errorf("message = %+v, want delivery at 2", m)
	}
}

func TestGenerateOneShotBoundedDelay(t *testing.T) {
	sys, err := Generate(oneShot(), BoundedDelay{Min: 1, Max: 3}, twoProcConfig(), 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Runs) != 3 {
		t.Fatalf("bounded delay 1..3: %d runs, want 3", len(sys.Runs))
	}
	seen := map[runs.Time]bool{}
	for _, r := range sys.Runs {
		seen[r.Messages[0].RecvTime] = true
	}
	for _, want := range []runs.Time{1, 2, 3} {
		if !seen[want] {
			t.Errorf("missing delivery time %d", want)
		}
	}
}

func TestGenerateOneShotAsync(t *testing.T) {
	sys, err := Generate(oneShot(), Async{}, twoProcConfig(), 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Delivery at 1, 2, 3, 4 or beyond the horizon: 5 runs.
	if len(sys.Runs) != 5 {
		t.Fatalf("async: %d runs, want 5", len(sys.Runs))
	}
}

func TestGenerateHandshakeChain(t *testing.T) {
	// Handshake over an unreliable channel with a budget of 3 messages:
	// the runs are exactly "lost at message i" for i = 1..3 plus the
	// all-delivered run: 4 runs.
	sys, err := Generate(handshake(), Unreliable{Delay: 1}, twoProcConfig(), 8,
		Options{MaxMessagesPerRun: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Runs) != 4 {
		t.Fatalf("handshake budget 3: %d runs, want 4", len(sys.Runs))
	}
	counts := map[int]int{} // delivered count -> how many runs
	for _, r := range sys.Runs {
		d := 0
		for _, m := range r.Messages {
			if m.Delivered() {
				d++
			}
		}
		counts[d]++
	}
	for d := 0; d <= 3; d++ {
		if counts[d] != 1 {
			t.Errorf("runs with %d deliveries = %d, want 1 (counts=%v)", d, counts[d], counts)
		}
	}
}

func TestGenerateRunExplosionGuard(t *testing.T) {
	// A chatty protocol over async channels explodes; the guard must trip.
	chatty := Func(func(v LocalView) []Outgoing {
		return []Outgoing{{To: 1 - v.Me, Payload: "x"}}
	})
	_, err := Generate([]Protocol{chatty, chatty}, Async{}, twoProcConfig(), 6, Options{MaxRuns: 500})
	if err == nil {
		t.Fatal("expected run explosion error")
	}
}

func TestGenerateInvalidDestination(t *testing.T) {
	bad := Func(func(v LocalView) []Outgoing {
		return []Outgoing{{To: 9, Payload: "x"}}
	})
	if _, err := Generate([]Protocol{bad, Silent}, Reliable{Delay: 1}, twoProcConfig(), 2, Options{}); err == nil {
		t.Fatal("expected invalid destination error")
	}
}

func TestViewOfHidesLostMessagesFromReceiver(t *testing.T) {
	r := runs.NewRun("r", 2, 5)
	r.SendLost(0, 1, 1, "m")
	v := viewOf(r, 1, 5)
	if len(v.Received) != 0 {
		t.Error("receiver sees a lost message")
	}
	v0 := viewOf(r, 0, 5)
	if len(v0.Sent) != 1 {
		t.Error("sender should see its own send")
	}
}

func TestViewOfClockVisibility(t *testing.T) {
	r := runs.NewRun("r", 2, 5)
	v := viewOf(r, 0, 3)
	if v.HasClock {
		t.Error("clockless processor reports a clock")
	}
	r.SetShiftedClock(0, 10)
	v = viewOf(r, 0, 3)
	if !v.HasClock || v.Clock != 13 {
		t.Errorf("clock view = %+v, want reading 13", v)
	}
}

func TestExtendsAndConfigs(t *testing.T) {
	a := runs.NewRun("a", 2, 5)
	a.Send(0, 1, 2, 3, "m")
	b := a.Clone()
	b.Name = "b"
	b.Send(1, 0, 4, 5, "late") // differs only after t=3
	if !Extends(b, a, 3) {
		t.Error("b should extend (a, 3)")
	}
	if Extends(b, a, 5) {
		t.Error("b should not extend (a, 5): histories diverge at 5")
	}
	if !SameInitialConfig(a, b) || !SameClockReadings(a, b) {
		t.Error("configs should match")
	}
	c := runs.NewRun("c", 2, 5)
	c.Init[0] = "x"
	if SameInitialConfig(a, c) {
		t.Error("different initial states accepted")
	}
	d := runs.NewRun("d", 2, 5)
	d.SetIdentityClock(0)
	if SameClockReadings(a, d) {
		t.Error("clock presence mismatch accepted")
	}
}

func TestNGConditionsOnUnreliableSystem(t *testing.T) {
	sys, err := Generate(handshake(), Unreliable{Delay: 1}, twoProcConfig(), 6,
		Options{MaxMessagesPerRun: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckNG1(sys); err != nil {
		t.Errorf("NG1 should hold for the unreliable handshake system: %v", err)
	}
	if err := CheckNG2(sys); err != nil {
		t.Errorf("NG2 should hold for the unreliable handshake system: %v", err)
	}
}

func TestNG1PrimeOnAsyncSystem(t *testing.T) {
	sys, err := Generate(oneShot(), Async{}, twoProcConfig(), 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckNG1Prime(sys); err != nil {
		t.Errorf("NG1' should hold for the async system: %v", err)
	}
	if err := CheckNG2(sys); err != nil {
		t.Errorf("NG2 should hold for the async system: %v", err)
	}
}

func TestNG1FailsOnReliableSystem(t *testing.T) {
	sys, err := Generate(oneShot(), Reliable{Delay: 1}, twoProcConfig(), 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckNG1(sys); err == nil {
		t.Error("NG1 should fail when communication is guaranteed")
	}
}

// interpFor builds the standard interpretation for handshake systems.
func interpFor() runs.Interpretation {
	return runs.Interpretation{
		"sent1": runs.StablyTrue(runs.SentBy("hs1")),
		"del1":  runs.StablyTrue(runs.ReceivedBy("hs1")),
		"del2":  runs.StablyTrue(runs.ReceivedBy("hs2")),
	}
}

func TestTheorem5OnUnreliableHandshake(t *testing.T) {
	sys, err := Generate(handshake(), Unreliable{Delay: 1}, twoProcConfig(), 6,
		Options{MaxMessagesPerRun: 3})
	if err != nil {
		t.Fatal(err)
	}
	pm := sys.Model(runs.CompleteHistoryView, interpFor())
	formulas := []logic.Formula{
		logic.P("sent1"),
		logic.P("del1"),
		logic.P("del2"),
		logic.True,
		logic.Neg(logic.P("del1")),
	}
	results, err := CheckTheorem5(pm, nil, formulas)
	if err != nil {
		t.Fatalf("Theorem 5 violated: %v", err)
	}
	if len(results) == 0 {
		t.Fatal("Theorem 5 check made no comparisons")
	}
	// Sanity: C del1 holds nowhere (nothing new becomes common knowledge),
	// while C true holds everywhere.
	cDel, err := pm.Eval(logic.MustParse("C del1"))
	if err != nil {
		t.Fatal(err)
	}
	if !cDel.IsEmpty() {
		t.Errorf("C del1 should be unattainable, got %s", cDel)
	}
	cTrue, err := pm.Eval(logic.MustParse("C true"))
	if err != nil {
		t.Fatal(err)
	}
	if !cTrue.IsFull() {
		t.Error("C true should hold everywhere")
	}
}

func TestTheorem7OnAsyncSystem(t *testing.T) {
	sys, err := Generate(oneShot(), Async{}, twoProcConfig(), 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pm := sys.Model(runs.CompleteHistoryView, runs.Interpretation{
		"sent": runs.StablyTrue(runs.SentBy("m")),
		"del":  runs.StablyTrue(runs.ReceivedBy("m")),
	})
	formulas := []logic.Formula{logic.P("sent"), logic.P("del")}
	if _, err := CheckTheorem5(pm, nil, formulas); err != nil {
		t.Fatalf("Theorem 7 violated: %v", err)
	}
	// The protocol sends m at time 0 in every run, so "sent" is valid in
	// the system and (consistently with Theorem 7) common knowledge by
	// community membership. Delivery, however, is never common knowledge.
	cSent, err := pm.Eval(logic.MustParse("C sent"))
	if err != nil {
		t.Fatal(err)
	}
	if !cSent.IsFull() {
		t.Error("C sent should hold everywhere: sending is valid in the system")
	}
	cDel, err := pm.Eval(logic.MustParse("C del"))
	if err != nil {
		t.Fatal(err)
	}
	if !cDel.IsEmpty() {
		t.Errorf("C del should be unattainable in the async system, got %s", cDel)
	}
}

// handshakeIfGo is the handshake started only when the initiator's initial
// state is "go": the Section 4 situation where general A's desire to attack
// is not known in advance.
func handshakeIfGo() []Protocol {
	base := handshake()
	initiator := Func(func(v LocalView) []Outgoing {
		if v.Init != "go" {
			return nil
		}
		return base[0].Step(v)
	})
	return []Protocol{initiator, base[1]}
}

func goIdleConfigs() []Config {
	return []Config{
		{Name: "go", Init: []string{"go", ""}},
		{Name: "idle", Init: []string{"", ""}},
	}
}

// alternatingDepth builds K_{recv(d)} K_{recv(d-1)} ... K_{recv(1)} sent1,
// where recv(i) is the receiver of the i-th handshake message (p1 for odd
// i, p0 for even i): the state of knowledge produced by d deliveries.
func alternatingDepth(d int) logic.Formula {
	f := logic.P("sent1")
	for i := 1; i <= d; i++ {
		if i%2 == 1 {
			f = logic.K(1, f)
		} else {
			f = logic.K(0, f)
		}
	}
	return f
}

func TestKnowledgeDepthTracksDeliveries(t *testing.T) {
	// Section 4/7: with the initiator's intent uncertain, each delivered
	// message adds exactly one level to the alternating knowledge of
	// sent1 at the end of the run, and no level beyond the delivery count
	// is attained.
	sys, err := Generate(handshakeIfGo(), Unreliable{Delay: 1}, goIdleConfigs(), 10,
		Options{MaxMessagesPerRun: 4})
	if err != nil {
		t.Fatal(err)
	}
	pm := sys.Model(runs.CompleteHistoryView, interpFor())
	end := sys.Horizon

	for ri, r := range sys.Runs {
		d := 0
		for _, m := range r.Messages {
			if m.Delivered() {
				d++
			}
		}
		w := pm.World(ri, end)
		if d >= 1 {
			set, err := pm.Eval(alternatingDepth(d))
			if err != nil {
				t.Fatal(err)
			}
			if !set.Contains(w) {
				t.Errorf("run %s (%d deliveries): depth-%d knowledge should hold", r.Name, d, d)
			}
		}
		set, err := pm.Eval(alternatingDepth(d + 1))
		if err != nil {
			t.Fatal(err)
		}
		if set.Contains(w) {
			t.Errorf("run %s (%d deliveries): depth-%d knowledge should NOT hold", r.Name, d, d+1)
		}
	}
	// And sent1 itself never becomes common knowledge (Theorem 5).
	c, err := pm.Eval(logic.MustParse("C sent1"))
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsEmpty() {
		t.Errorf("C sent1 should be unattainable, got %s", c)
	}
}

func TestChannelNames(t *testing.T) {
	for _, c := range []Channel{
		Reliable{Delay: 1}, BoundedDelay{Min: 1, Max: 2}, Unreliable{Delay: 1},
		Async{}, LossyUntil{Delay: 1, Deadline: 3},
	} {
		if c.Name() == "" {
			t.Errorf("%T has empty name", c)
		}
	}
}

func TestLossyUntilChannel(t *testing.T) {
	ch := LossyUntil{Delay: 1, Deadline: 2}
	// Before the deadline: deliver-or-lose.
	opts := ch.Options(0, 1, 2, 10)
	if len(opts) != 2 || opts[0] != 3 || opts[1] != runs.Lost {
		t.Errorf("Options at deadline = %v", opts)
	}
	// After the deadline: reliable.
	opts = ch.Options(0, 1, 3, 10)
	if len(opts) != 1 || opts[0] != 4 {
		t.Errorf("Options after deadline = %v", opts)
	}
	// Beyond the horizon: forced loss.
	opts = ch.Options(0, 1, 10, 10)
	if len(opts) != 1 || opts[0] != runs.Lost {
		t.Errorf("Options beyond horizon = %v", opts)
	}
}

func TestGenerateHonorsWakeTimes(t *testing.T) {
	// A processor that wakes at time 3 sends nothing before then, and its
	// first action carries its (post-wake) view.
	sender := Func(func(v LocalView) []Outgoing {
		if len(v.Sent) == 0 {
			return []Outgoing{{To: 1, Payload: "up"}}
		}
		return nil
	})
	cfgs := []Config{{Name: "late", Init: []string{"", ""}, Wake: []runs.Time{3, 0}}}
	sys, err := Generate([]Protocol{sender, Silent}, Reliable{Delay: 1}, cfgs, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := sys.Runs[0]
	if len(r.Messages) != 1 {
		t.Fatalf("messages = %v", r.Messages)
	}
	if r.Messages[0].SendTime != 3 {
		t.Errorf("first send at %d, want 3 (the wake time)", r.Messages[0].SendTime)
	}
}

func TestMultipleConfigs(t *testing.T) {
	cfgs := []Config{
		{Name: "bit0", Init: []string{"0", ""}},
		{Name: "bit1", Init: []string{"1", ""}},
	}
	// p0 sends its bit; unreliable channel.
	sender := Func(func(v LocalView) []Outgoing {
		if len(v.Sent) == 0 {
			return []Outgoing{{To: 1, Payload: "bit=" + v.Init}}
		}
		return nil
	})
	sys, err := Generate([]Protocol{sender, Silent}, Unreliable{Delay: 1}, cfgs, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Runs) != 4 {
		t.Fatalf("2 configs x 2 outcomes = %d runs, want 4", len(sys.Runs))
	}
	names := map[string]bool{}
	for _, r := range sys.Runs {
		names[strings.SplitN(r.Name, "#", 2)[0]] = true
	}
	if !names["bit0"] || !names["bit1"] {
		t.Errorf("config names not preserved: %v", names)
	}
}

func BenchmarkGenerateHandshake(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := Generate(handshake(), Unreliable{Delay: 1}, twoProcConfig(), 10,
			Options{MaxMessagesPerRun: 5})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTheorem5Check(b *testing.B) {
	sys, err := Generate(handshake(), Unreliable{Delay: 1}, twoProcConfig(), 6,
		Options{MaxMessagesPerRun: 3})
	if err != nil {
		b.Fatal(err)
	}
	pm := sys.Model(runs.CompleteHistoryView, interpFor())
	formulas := []logic.Formula{logic.P("sent1"), logic.P("del1")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CheckTheorem5(pm, nil, formulas); err != nil {
			b.Fatal(err)
		}
	}
}
