package protocol

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/runs"
)

// This file implements the run-extension relation of Section 5, machine
// checkers for the "communication not guaranteed" conditions NG1/NG2 and
// the "unbounded message delivery" condition NG1′ of Section 8, and the
// checker for Theorems 5 and 7: in such systems, common knowledge holds at
// (r, t) iff it holds at (r⁻, t) for the silent run r⁻ with the same
// initial configuration and clock readings.

// SameInitialConfig reports whether two runs have the same initial
// configuration (initial states and wake-up times, Section 5).
func SameInitialConfig(a, b *runs.Run) bool {
	if a.N != b.N {
		return false
	}
	for p := 0; p < a.N; p++ {
		if a.Init[p] != b.Init[p] || a.Wake[p] != b.Wake[p] {
			return false
		}
	}
	return true
}

// SameClockReadings reports whether two runs have the same clock readings
// at every point. Runs without clocks vacuously agree (as in the paper).
func SameClockReadings(a, b *runs.Run) bool {
	if a.N != b.N || a.Horizon != b.Horizon {
		return false
	}
	for p := 0; p < a.N; p++ {
		for t := runs.Time(0); t <= a.Horizon; t++ {
			ca, oka := a.ClockReading(p, t)
			cb, okb := b.ClockReading(p, t)
			if oka != okb || (oka && ca != cb) {
				return false
			}
		}
	}
	return true
}

// Extends reports whether rPrime extends the point (r, t): every processor
// has the same history in both runs at every time up to and including t.
func Extends(rPrime, r *runs.Run, t runs.Time) bool {
	if rPrime.N != r.N {
		return false
	}
	for p := 0; p < r.N; p++ {
		for u := runs.Time(0); u <= t; u++ {
			if r.History(p, u) != rPrime.History(p, u) {
				return false
			}
		}
	}
	return true
}

// receivesIn reports whether any processor (or only processor p if p >= 0,
// or any processor except p if exceptFor is true) receives a message in r
// during [from, to].
func receivesIn(r *runs.Run, from, to runs.Time, p int, exceptFor bool) bool {
	for _, m := range r.Messages {
		if !m.Delivered() || m.RecvTime < from || m.RecvTime > to {
			continue
		}
		switch {
		case p < 0:
			return true
		case exceptFor && m.To != p:
			return true
		case !exceptFor && m.To == p:
			return true
		}
	}
	return false
}

// CheckNG1 verifies condition NG1 on the system: for every run r and time
// t, some run r′ extends (r, t), has the same initial configuration and
// clock readings, and receives no messages at or after t.
func CheckNG1(sys *runs.System) error {
	for _, r := range sys.Runs {
		for t := runs.Time(0); t <= sys.Horizon; t++ {
			found := false
			for _, rp := range sys.Runs {
				if SameInitialConfig(r, rp) && SameClockReadings(r, rp) &&
					Extends(rp, r, t) && !receivesIn(rp, t, sys.Horizon, -1, false) {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("protocol: NG1 fails at (%s, %d)", r.Name, t)
			}
		}
	}
	return nil
}

// CheckNG2 verifies condition NG2: whenever processor p receives no message
// in the open interval (t′, t) of run r, some run r′ extends (r, t′), has
// the same initial configuration and clock readings, agrees with p's
// history up to t, and delivers no messages to processors other than p in
// [t′, t).
func CheckNG2(sys *runs.System) error {
	for _, r := range sys.Runs {
		for tp := runs.Time(0); tp < sys.Horizon; tp++ {
			for t := tp + 1; t <= sys.Horizon; t++ {
				for p := 0; p < sys.N; p++ {
					// p must receive nothing in (t', t), i.e. [t'+1, t-1].
					if tp+1 <= t-1 && receivesIn(r, tp+1, t-1, p, false) {
						continue
					}
					if !ng2Witness(sys, r, p, tp, t) {
						return fmt.Errorf("protocol: NG2 fails for p%d at (%s, (%d,%d))", p, r.Name, tp, t)
					}
				}
			}
		}
	}
	return nil
}

func ng2Witness(sys *runs.System, r *runs.Run, p int, tp, t runs.Time) bool {
	for _, rp := range sys.Runs {
		if !SameInitialConfig(r, rp) || !SameClockReadings(r, rp) || !Extends(rp, r, tp) {
			continue
		}
		// p's history must agree up to t.
		agree := true
		for u := runs.Time(0); u <= t; u++ {
			if r.History(p, u) != rp.History(p, u) {
				agree = false
				break
			}
		}
		if !agree {
			continue
		}
		// No q != p receives in [t', t).
		if t-1 >= tp && receivesIn(rp, tp, t-1, p, true) {
			continue
		}
		return true
	}
	return false
}

// CheckNG1Prime verifies condition NG1′ (unbounded delivery): for every run
// r and times t <= u, some run r′ extends (r, t), has the same initial
// configuration and clock readings, and receives no messages in [t, u].
func CheckNG1Prime(sys *runs.System) error {
	for _, r := range sys.Runs {
		for t := runs.Time(0); t <= sys.Horizon; t++ {
			for u := t; u <= sys.Horizon; u++ {
				found := false
				for _, rp := range sys.Runs {
					if SameInitialConfig(r, rp) && SameClockReadings(r, rp) &&
						Extends(rp, r, t) && !receivesIn(rp, t, u, -1, false) {
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("protocol: NG1' fails at (%s, %d..%d)", r.Name, t, u)
				}
			}
		}
	}
	return nil
}

// SilentRunFor returns a run of the system with the same initial
// configuration and clock readings as r in which no messages are received
// up to time t (the run r⁻ of Theorems 5 and 7), or nil if none exists.
func SilentRunFor(sys *runs.System, r *runs.Run, t runs.Time) *runs.Run {
	for _, rp := range sys.Runs {
		if SameInitialConfig(r, rp) && SameClockReadings(r, rp) &&
			!receivesIn(rp, 0, t-1, -1, false) {
			return rp
		}
	}
	return nil
}

// Theorem5Result records one comparison made by CheckTheorem5.
type Theorem5Result struct {
	Run      string
	Silent   string
	T        runs.Time
	Formula  string
	AtRun    bool // C_G φ at (r, t)
	AtSilent bool // C_G φ at (r⁻, t)
}

// CheckTheorem5 verifies the conclusion of Theorem 5 (and Theorem 7) on a
// point model: for every run r, every time t, and every formula φ in the
// family, C_G φ holds at (r, t) iff it holds at (r⁻, t), where r⁻ is a run
// with the same initial configuration and clock readings in which no
// messages are received up to t. Runs with no matching silent run are
// skipped (they cannot arise if NG1 holds). It returns the comparisons made
// and an error on the first violation.
func CheckTheorem5(pm *runs.PointModel, g logic.Group, formulas []logic.Formula) ([]Theorem5Result, error) {
	sys := pm.Sys
	var results []Theorem5Result
	for ri, r := range sys.Runs {
		for t := runs.Time(0); t <= sys.Horizon; t++ {
			rMinus := SilentRunFor(sys, r, t)
			if rMinus == nil {
				continue
			}
			var mi int
			for j, rr := range sys.Runs {
				if rr == rMinus {
					mi = j
					break
				}
			}
			for _, f := range formulas {
				cf := logic.C(g, f)
				set, err := pm.Eval(cf)
				if err != nil {
					return nil, err
				}
				atRun := set.Contains(pm.World(ri, t))
				atSilent := set.Contains(pm.World(mi, t))
				results = append(results, Theorem5Result{
					Run: r.Name, Silent: rMinus.Name, T: t,
					Formula: cf.String(), AtRun: atRun, AtSilent: atSilent,
				})
				if atRun != atSilent {
					return results, fmt.Errorf(
						"protocol: Theorem 5 violated: %s at (%s,%d)=%v but at (%s,%d)=%v",
						cf, r.Name, t, atRun, rMinus.Name, t, atSilent)
				}
			}
		}
	}
	return results, nil
}
