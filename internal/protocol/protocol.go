// Package protocol implements Section 5's notion of a protocol — a
// deterministic function from local histories to messages — together with
// channel (adversary) models and exhaustive generation of the system of all
// possible runs of a joint protocol up to a finite horizon.
//
// The channel models correspond to the communication assumptions the paper
// analyzes:
//
//   - Reliable: fixed, known delivery time.
//   - BoundedDelay: delivery within [minDelay, maxDelay] — the R2–D2
//     situation of Section 8 and the broadcast channels of Section 11.
//   - Unreliable: messages may be lost — "communication is not guaranteed"
//     (conditions NG1 and NG2 of Section 8).
//   - Async: delivery guaranteed but with unbounded delay, truncated at the
//     horizon — "unbounded message delivery times" (NG1′ and NG2).
//
// The package also provides machine checkers for the NG1/NG2/NG1′
// conditions and for the run-extension relation of Section 5.
package protocol

import (
	"fmt"
	"strconv"

	"repro/internal/runs"
)

// ReceivedMsg is a delivered message as it appears in a local history.
type ReceivedMsg struct {
	From    int
	Payload string
	// Clock is the receiver's clock reading at delivery; meaningful only
	// if the receiver has a clock.
	Clock    int
	HasClock bool
}

// SentMsg is a sent message as it appears in a local history.
type SentMsg struct {
	To       int
	Payload  string
	Clock    int
	HasClock bool
}

// LocalView is the information a protocol may base its actions on: exactly
// the local history h(p, r, t) of Section 5 (initial state, ordered messages
// sent and received strictly before now, and the clock reading if the
// processor has a clock). It deliberately excludes real time, other
// processors' states, and undelivered-message outcomes.
type LocalView struct {
	Me       int
	Init     string
	Clock    int
	HasClock bool
	// Events interleaves sends and receives in the order observed.
	Received []ReceivedMsg
	Sent     []SentMsg
}

// Outgoing is a message a protocol asks to send now.
type Outgoing struct {
	To      int
	Payload string
}

// Protocol decides, deterministically from the local view, which messages
// to send at the current instant.
type Protocol interface {
	Step(v LocalView) []Outgoing
}

// Func adapts a function to the Protocol interface.
type Func func(v LocalView) []Outgoing

// Step implements Protocol.
func (f Func) Step(v LocalView) []Outgoing { return f(v) }

// Silent is the protocol that never sends anything.
var Silent Protocol = Func(func(LocalView) []Outgoing { return nil })

// Channel models the communication medium: the possible delivery times of a
// message sent at a given time. Returning runs.Lost as an option means the
// message may never be delivered (within the horizon).
type Channel interface {
	// Options returns the possible receive times (absolute) of a message
	// sent from one processor to another at time t, given the horizon.
	// Times beyond the horizon must be reported as runs.Lost.
	Options(from, to int, t, horizon runs.Time) []runs.Time
	// Name identifies the channel model in experiment output.
	Name() string
}

// Reliable delivers every message after exactly Delay ticks.
type Reliable struct {
	Delay runs.Time
}

// Options implements Channel.
func (c Reliable) Options(_, _ int, t, horizon runs.Time) []runs.Time {
	at := t + c.Delay
	if at > horizon {
		return []runs.Time{runs.Lost}
	}
	return []runs.Time{at}
}

// Name implements Channel.
func (c Reliable) Name() string { return fmt.Sprintf("reliable(delay=%d)", c.Delay) }

// BoundedDelay delivers every message after between Min and Max ticks —
// guaranteed delivery with uncertain timing.
type BoundedDelay struct {
	Min, Max runs.Time
}

// Options implements Channel.
func (c BoundedDelay) Options(_, _ int, t, horizon runs.Time) []runs.Time {
	var out []runs.Time
	for d := c.Min; d <= c.Max; d++ {
		if t+d <= horizon {
			out = append(out, t+d)
		} else {
			out = append(out, runs.Lost)
			break
		}
	}
	return out
}

// Name implements Channel.
func (c BoundedDelay) Name() string { return fmt.Sprintf("bounded(%d..%d)", c.Min, c.Max) }

// Unreliable delivers after exactly Delay ticks or loses the message —
// "communication is not guaranteed" (Section 8).
type Unreliable struct {
	Delay runs.Time
}

// Options implements Channel.
func (c Unreliable) Options(_, _ int, t, horizon runs.Time) []runs.Time {
	at := t + c.Delay
	if at > horizon {
		return []runs.Time{runs.Lost}
	}
	return []runs.Time{at, runs.Lost}
}

// Name implements Channel.
func (c Unreliable) Name() string { return fmt.Sprintf("unreliable(delay=%d)", c.Delay) }

// LossyUntil is unreliable for messages sent at or before Deadline and
// reliable afterwards. It is the finite-horizon surrogate for an unreliable
// channel observed forever: every loss the adversary can cause is early
// enough that the protocol can detect it within the horizon. (On a truly
// unreliable channel a loss in the final round is noticed by at most one
// party within any finite observation window, an artifact of truncation
// rather than of the modeled system.)
type LossyUntil struct {
	Delay    runs.Time
	Deadline runs.Time
}

// Options implements Channel.
func (c LossyUntil) Options(_, _ int, t, horizon runs.Time) []runs.Time {
	at := t + c.Delay
	if at > horizon {
		return []runs.Time{runs.Lost}
	}
	if t <= c.Deadline {
		return []runs.Time{at, runs.Lost}
	}
	return []runs.Time{at}
}

// Name implements Channel.
func (c LossyUntil) Name() string {
	return fmt.Sprintf("lossy-until(delay=%d,deadline=%d)", c.Delay, c.Deadline)
}

// Async guarantees delivery eventually but with unbounded delay; within a
// finite horizon, a message sent at t may arrive at any time in (t, horizon]
// or after the horizon (reported as Lost). This realizes NG1′ and NG2.
type Async struct{}

// Options implements Channel.
func (Async) Options(_, _ int, t, horizon runs.Time) []runs.Time {
	out := make([]runs.Time, 0, int(horizon-t)+1)
	for at := t + 1; at <= horizon; at++ {
		out = append(out, at)
	}
	out = append(out, runs.Lost)
	return out
}

// Name implements Channel.
func (Async) Name() string { return "async(unbounded)" }

// Config is one initial configuration: initial states, wake-up times, and
// clock offsets. A nil Clocks slice means no clocks; otherwise Clocks[p] is
// the offset of p's (identity-rate) clock from real time.
type Config struct {
	Name  string
	Init  []string
	Wake  []runs.Time
	Clock []int
}

// Options bounds run generation.
type Options struct {
	// MaxRuns aborts generation if the run count would exceed it
	// (defaults to 100000).
	MaxRuns int
	// MaxMessagesPerRun stops a run from sending further messages once it
	// has this many (0 = unlimited). This models a finite protocol budget
	// and keeps handshake-style protocols finite.
	MaxMessagesPerRun int
}

// ViewAt reconstructs the local view of processor p at time t of run r:
// exactly the information h(p, r, t) exposes. Decision rules layered on top
// of generated systems (e.g. the generals' attack rules) must be functions
// of this view to be legitimate protocols.
func ViewAt(r *runs.Run, p int, t runs.Time) LocalView {
	return viewOf(r, p, t)
}

// viewOf reconstructs the local view of processor p at time t from a
// (possibly partial) run. Only events strictly before t are visible.
func viewOf(r *runs.Run, p int, t runs.Time) LocalView {
	v := LocalView{Me: p, Init: r.Init[p]}
	if c, ok := r.ClockReading(p, t); ok {
		v.Clock = c
		v.HasClock = true
	}
	type ev struct {
		at   runs.Time
		seq  int
		send bool
		idx  int
	}
	var evs []ev
	for i, m := range r.Messages {
		if m.From == p && m.SendTime < t {
			evs = append(evs, ev{at: m.SendTime, seq: i, send: true, idx: i})
		}
		if m.To == p && m.Delivered() && m.RecvTime < t {
			evs = append(evs, ev{at: m.RecvTime, seq: i, send: false, idx: i})
		}
	}
	// Order by time then by message sequence.
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && (evs[j].at < evs[j-1].at || (evs[j].at == evs[j-1].at && evs[j].seq < evs[j-1].seq)); j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
	for _, e := range evs {
		m := r.Messages[e.idx]
		if e.send {
			sm := SentMsg{To: m.To, Payload: m.Payload}
			if c, ok := r.ClockReading(p, m.SendTime); ok {
				sm.Clock, sm.HasClock = c, true
			}
			v.Sent = append(v.Sent, sm)
		} else {
			rm := ReceivedMsg{From: m.From, Payload: m.Payload}
			if c, ok := r.ClockReading(p, m.RecvTime); ok {
				rm.Clock, rm.HasClock = c, true
			}
			v.Received = append(v.Received, rm)
		}
	}
	return v
}

// Generate produces the system of all runs of the joint protocol under the
// given channel, one tree of runs per initial configuration, observed up to
// the horizon. Protocols fire at every time step from their wake-up time;
// branching happens only on channel delivery choices (the protocols are
// deterministic, as in the paper).
func Generate(protos []Protocol, ch Channel, cfgs []Config, horizon runs.Time, opt Options) (*runs.System, error) {
	if opt.MaxRuns == 0 {
		opt.MaxRuns = 100000
	}
	n := len(protos)
	var complete []*runs.Run

	for _, cfg := range cfgs {
		base := runs.NewRun(cfg.Name, n, horizon)
		if len(cfg.Init) > 0 {
			copy(base.Init, cfg.Init)
		}
		if len(cfg.Wake) > 0 {
			copy(base.Wake, cfg.Wake)
		}
		if cfg.Clock != nil {
			for p := 0; p < n; p++ {
				base.SetShiftedClock(p, cfg.Clock[p])
			}
		}
		frontier := []*runs.Run{base}
		for t := runs.Time(0); t <= horizon; t++ {
			var next []*runs.Run
			for _, r := range frontier {
				// Collect this tick's sends across all processors.
				type send struct {
					from int
					out  Outgoing
				}
				var sends []send
				for p := 0; p < n; p++ {
					if t < r.Wake[p] {
						continue
					}
					if opt.MaxMessagesPerRun > 0 && len(r.Messages) >= opt.MaxMessagesPerRun {
						break
					}
					for _, o := range protos[p].Step(viewOf(r, p, t)) {
						if o.To < 0 || o.To >= n {
							return nil, fmt.Errorf("protocol: p%d sends to invalid destination %d", p, o.To)
						}
						sends = append(sends, send{from: p, out: o})
					}
				}
				if opt.MaxMessagesPerRun > 0 && len(r.Messages)+len(sends) > opt.MaxMessagesPerRun {
					sends = sends[:opt.MaxMessagesPerRun-len(r.Messages)]
				}
				if len(sends) == 0 {
					next = append(next, r)
					continue
				}
				// Branch over the cartesian product of delivery options.
				branches := []*runs.Run{r}
				for _, s := range sends {
					opts := ch.Options(s.from, s.out.To, t, horizon)
					var expanded []*runs.Run
					for _, b := range branches {
						for _, at := range opts {
							nb := b.Clone()
							if at == runs.Lost {
								nb.SendLost(s.from, s.out.To, t, s.out.Payload)
							} else {
								nb.Send(s.from, s.out.To, t, at, s.out.Payload)
							}
							expanded = append(expanded, nb)
						}
					}
					branches = expanded
					if len(branches)+len(next) > opt.MaxRuns {
						return nil, fmt.Errorf("protocol: run explosion (> %d runs); lower the horizon or message budget", opt.MaxRuns)
					}
				}
				next = append(next, branches...)
			}
			frontier = next
		}
		complete = append(complete, frontier...)
	}

	for i, r := range complete {
		if r.Name == "" {
			r.Name = "run"
		}
		r.Name = r.Name + "#" + strconv.Itoa(i)
	}
	return runs.NewSystem(complete...)
}
