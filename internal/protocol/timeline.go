package protocol

import "repro/internal/runs"

// Timeline is the precomputed sequence of local views of one processor
// through one run. The views at successive times share one pair of backing
// arrays — a processor's observed sends (respectively receives) at time t
// are a prefix of those at t+1 — so At is allocation-free: it returns slice
// headers into the shared arrays plus the clock reading.
//
// Exhaustive analyses that re-derive views for every (rule, run, time)
// triple (the coordinated-attack rule searches of Sections 4 and 7) build
// one Timeline per (run, processor) and replay it, instead of
// reconstructing the event history per probe the way ViewAt does.
//
// Callers must treat the Sent/Received slices of returned views as
// read-only; they alias the timeline.
type Timeline struct {
	r    *runs.Run
	p    int
	sent []SentMsg
	recv []ReceivedMsg
	// sentBefore[t] / recvBefore[t] count the events observed strictly
	// before time t, for t in 0..Horizon+1.
	sentBefore []int32
	recvBefore []int32
}

// NewTimeline precomputes processor p's views through run r.
func NewTimeline(r *runs.Run, p int) *Timeline {
	tl := &Timeline{r: r, p: p}
	// Collect all events p ever observes, ordered by (time, message seq) —
	// the same order viewOf derives per probe.
	type ev struct {
		at   runs.Time
		seq  int
		send bool
	}
	var evs []ev
	for i, m := range r.Messages {
		if m.From == p && m.SendTime <= r.Horizon {
			evs = append(evs, ev{at: m.SendTime, seq: i, send: true})
		}
		if m.To == p && m.Delivered() && m.RecvTime <= r.Horizon {
			evs = append(evs, ev{at: m.RecvTime, seq: i, send: false})
		}
	}
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && (evs[j].at < evs[j-1].at || (evs[j].at == evs[j-1].at && evs[j].seq < evs[j-1].seq)); j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
	for _, e := range evs {
		m := r.Messages[e.seq]
		if e.send {
			sm := SentMsg{To: m.To, Payload: m.Payload}
			if c, ok := r.ClockReading(p, m.SendTime); ok {
				sm.Clock, sm.HasClock = c, true
			}
			tl.sent = append(tl.sent, sm)
		} else {
			rm := ReceivedMsg{From: m.From, Payload: m.Payload}
			if c, ok := r.ClockReading(p, m.RecvTime); ok {
				rm.Clock, rm.HasClock = c, true
			}
			tl.recv = append(tl.recv, rm)
		}
	}
	// Prefix counts: events observed strictly before each time.
	span := int(r.Horizon) + 2
	tl.sentBefore = make([]int32, span)
	tl.recvBefore = make([]int32, span)
	idx := 0
	var si, ri int32
	for t := 0; t < span; t++ {
		for idx < len(evs) && int(evs[idx].at) < t {
			if evs[idx].send {
				si++
			} else {
				ri++
			}
			idx++
		}
		tl.sentBefore[t] = si
		tl.recvBefore[t] = ri
	}
	return tl
}

// ReceivedBefore returns the number of messages the processor has received
// strictly before time t, read off the precomputed prefix counts in O(1).
// t must be in [0, Horizon+1]; t = Horizon+1 counts the whole run. Summing
// it over the processors of a run counts the deliveries of the run — the
// quantity the coordinated-attack delivery-chain replay announces.
func (tl *Timeline) ReceivedBefore(t runs.Time) int {
	return int(tl.recvBefore[t])
}

// At returns processor p's local view at time t, equal to ViewAt(r, p, t)
// but without reconstructing the history. t must be in [0, Horizon].
func (tl *Timeline) At(t runs.Time) LocalView {
	v := LocalView{Me: tl.p, Init: tl.r.Init[tl.p]}
	if c, ok := tl.r.ClockReading(tl.p, t); ok {
		v.Clock = c
		v.HasClock = true
	}
	v.Sent = tl.sent[:tl.sentBefore[t]]
	v.Received = tl.recv[:tl.recvBefore[t]]
	return v
}
