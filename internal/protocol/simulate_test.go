package protocol

import (
	"strconv"
	"testing"

	"repro/internal/faults"
	"repro/internal/runs"
)

// broadcastOnce sends one message to every other processor at the first
// step after waking, then stays silent.
func broadcastOnce(n int, payload string) Protocol {
	return Func(func(v LocalView) []Outgoing {
		if len(v.Sent) > 0 {
			return nil
		}
		var out []Outgoing
		for q := 0; q < n; q++ {
			if q != v.Me {
				out = append(out, Outgoing{To: q, Payload: payload})
			}
		}
		return out
	})
}

// chatty sends to processor 1 at every step.
var chatty Protocol = Func(func(v LocalView) []Outgoing {
	if v.Me != 0 {
		return nil
	}
	return []Outgoing{{To: 1, Payload: "tick"}}
})

func TestSimulateMatchesGenerateOnFaultFreePlan(t *testing.T) {
	// A degenerate plan (fixed delay, no faults) is the paper's reliable
	// channel: the single sampled run must carry exactly the message events
	// Generate produces under Reliable with the same delay.
	n := 3
	protos := []Protocol{broadcastOnce(n, "hello"), Silent, Silent}
	cfg := Config{Name: "bcast", Init: []string{"go", "", ""}}
	horizon := runs.Time(4)

	gen, err := Generate(protos, Reliable{Delay: 2}, []Config{cfg}, horizon, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(gen.Runs) != 1 {
		t.Fatalf("reliable generation produced %d runs, want 1", len(gen.Runs))
	}

	plan := &faults.Plan{Seed: 1, Delay: faults.Fixed{D: 2}}
	sim, err := SimulateRun(protos, plan, cfg, 0, horizon, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := gen.Runs[0]
	if len(sim.Messages) != len(g.Messages) {
		t.Fatalf("simulated %d messages, generated %d", len(sim.Messages), len(g.Messages))
	}
	for i := range sim.Messages {
		if sim.Messages[i] != g.Messages[i] {
			t.Fatalf("message %d: simulated %+v, generated %+v", i, sim.Messages[i], g.Messages[i])
		}
	}
}

func TestSampleSystemByteIdentical(t *testing.T) {
	n := 3
	protos := []Protocol{broadcastOnce(n, "m"), Silent, Silent}
	cfgs := []Config{
		{Name: "a", Init: []string{"go", "", ""}, Clock: []int{0, 0, 0}},
		{Name: "b", Init: []string{"go", "", ""}, Wake: []runs.Time{1, 0, 0}, Clock: []int{0, 0, 0}},
	}
	plan := &faults.Plan{
		Seed:  42,
		Delay: faults.Uniform{Min: 1, MaxD: 3},
		Drop:  0.2, Dup: 0.2,
		Crash: faults.CrashSpec{P: 0.3, MinDown: 1, MaxDown: 2},
		Drift: 1,
	}
	build := func() *runs.System {
		sys, err := SampleSystem(protos, plan, cfgs, 8, 6, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	s1, s2 := build(), build()
	if len(s1.Runs) != len(s2.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(s1.Runs), len(s2.Runs))
	}
	for i := range s1.Runs {
		if s1.Runs[i].Name != s2.Runs[i].Name {
			t.Fatalf("run %d names differ: %q vs %q", i, s1.Runs[i].Name, s2.Runs[i].Name)
		}
		if s1.Runs[i].Fingerprint() != s2.Runs[i].Fingerprint() {
			t.Fatalf("run %d (%s) fingerprints differ", i, s1.Runs[i].Name)
		}
	}
}

func TestSampleSystemDedupesFaultFreeSamples(t *testing.T) {
	n := 2
	protos := []Protocol{broadcastOnce(n, "m"), Silent}
	cfgs := []Config{
		{Name: "a", Init: []string{"go", ""}},
		{Name: "b", Init: []string{"idle", ""}},
	}
	plan := &faults.Plan{Seed: 7, Delay: faults.Fixed{D: 1}}
	sys, err := SampleSystem(protos, plan, cfgs, 5, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Without randomness every sample of a configuration is identical, so
	// the system collapses to one run per configuration.
	if len(sys.Runs) != 2 {
		t.Fatalf("fault-free sampling kept %d runs, want 2", len(sys.Runs))
	}
}

func TestSimulateDropsEverythingAtProbabilityOne(t *testing.T) {
	n := 2
	protos := []Protocol{broadcastOnce(n, "m"), Silent}
	plan := &faults.Plan{Seed: 5, Delay: faults.Fixed{D: 1}, Drop: 1}
	r, err := SimulateRun(protos, plan, Config{Init: []string{"go", ""}}, 0, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Messages) == 0 {
		t.Fatal("sender sent nothing")
	}
	for _, m := range r.Messages {
		if m.Delivered() {
			t.Fatalf("message %+v delivered under drop probability 1", m)
		}
	}
}

func TestSimulateCrashWindowSilencesAndLoses(t *testing.T) {
	protos := []Protocol{chatty, Silent}
	plan := &faults.Plan{
		Seed:  9,
		Delay: faults.Fixed{D: 1},
		Crash: faults.CrashSpec{P: 1, MinDown: 2, MaxDown: 2},
	}
	r, err := SimulateRun(protos, plan, Config{Init: []string{"go", ""}}, 3, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 2; p++ {
		if _, ok := r.Meta["crash"+strconv.Itoa(p)+".start"]; !ok {
			t.Fatalf("crash window for p%d missing from Meta", p)
		}
	}
	s0 := runs.Time(r.Meta["crash0.start"])
	e0 := runs.Time(r.Meta["crash0.end"])
	s1 := runs.Time(r.Meta["crash1.start"])
	e1 := runs.Time(r.Meta["crash1.end"])
	for _, m := range r.Messages {
		if m.SendTime >= s0 && m.SendTime <= e0 {
			t.Fatalf("crashed p0 sent at t=%d inside its down window [%d, %d]", m.SendTime, s0, e0)
		}
		if m.Delivered() && m.RecvTime >= s1 && m.RecvTime <= e1 {
			t.Fatalf("message delivered at t=%d inside p1's down window [%d, %d]", m.RecvTime, s1, e1)
		}
	}
}

func TestSimulateMessageBudget(t *testing.T) {
	protos := []Protocol{chatty, Silent}
	plan := &faults.Plan{Seed: 2, Delay: faults.Fixed{D: 1}}
	r, err := SimulateRun(protos, plan, Config{Init: []string{"go", ""}}, 0, 10, Options{MaxMessagesPerRun: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Messages) != 3 {
		t.Fatalf("budget 3 produced %d messages", len(r.Messages))
	}
}

func TestSimulateRejectsInvalidDestination(t *testing.T) {
	bad := Func(func(v LocalView) []Outgoing { return []Outgoing{{To: 9, Payload: "x"}} })
	plan := &faults.Plan{Seed: 2, Delay: faults.Fixed{D: 1}}
	if _, err := SimulateRun([]Protocol{bad}, plan, Config{}, 0, 3, Options{}); err == nil {
		t.Fatal("invalid destination accepted")
	}
}
