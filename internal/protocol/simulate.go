package protocol

import (
	"fmt"
	"strconv"

	"repro/internal/faults"
	"repro/internal/runs"
	"repro/internal/simclock"
)

// SimulateRun executes the joint protocol once under the given fault plan
// and produces the sampled run with index runIdx. Where Generate branches
// exhaustively over a channel's delivery options, SimulateRun draws one
// concrete fate per message — delay, loss, duplication — from the plan's
// streams for runIdx, so each run index names one reproducible execution.
//
// The execution is driven by a virtual clock (internal/simclock): every
// processor's protocol step at every tick is a scheduled timer, and the
// clock fires timers in (deadline, scheduling) order, so the interleaving —
// ticks ascending, processors in index order within a tick — is fixed and
// the produced run is byte-identical for equal arguments. Sends within a
// tick are invisible to same-tick steps (delays are >= 1 and views expose
// only events strictly before now), matching Generate's collect-then-append
// semantics.
//
// Fault semantics:
//
//   - A message's sampled delay places its delivery; deliveries past the
//     horizon, sampled drops, and deliveries into the receiver's crash
//     window are recorded as lost sends.
//   - A duplicated message is a second event with the same payload and an
//     independently sampled delay.
//   - A crashed processor does not step its protocol while down; it keeps
//     its pre-crash history on recovery. Crash windows land in the run's
//     Meta under "crash<p>.start" / "crash<p>.end".
//   - If the configuration has clocks, processor p's readings come from the
//     plan's drift stream with base offset cfg.Clock[p] (exact real time
//     plus offset when the plan has no drift).
func SimulateRun(protos []Protocol, plan *faults.Plan, cfg Config, runIdx int, horizon runs.Time, opt Options) (*runs.Run, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	n := len(protos)
	r := runs.NewRun(cfg.Name, n, horizon)
	if len(cfg.Init) > 0 {
		copy(r.Init, cfg.Init)
	}
	if len(cfg.Wake) > 0 {
		copy(r.Wake, cfg.Wake)
	}
	rf := plan.ForRun(runIdx, n, horizon)
	if cfg.Clock != nil {
		for p := 0; p < n; p++ {
			if err := r.SetClock(p, rf.ClockReadings(p, cfg.Clock[p])); err != nil {
				return nil, err
			}
		}
	}
	for p := 0; p < n; p++ {
		if start, end, crashed := rf.CrashWindow(p); crashed {
			r.Meta["crash"+strconv.Itoa(p)+".start"] = int(start)
			r.Meta["crash"+strconv.Itoa(p)+".end"] = int(end)
		}
	}

	clk := simclock.New(0)
	var simErr error
	record := func(from, to int, t runs.Time, delay int, dropped bool, payload string) {
		at := t + runs.Time(delay)
		if dropped || at > horizon || rf.Down(to, at) {
			r.SendLost(from, to, t, payload)
			return
		}
		r.Send(from, to, t, at, payload)
	}
	step := func(p int) func() {
		return func() {
			if simErr != nil {
				return
			}
			t := runs.Time(clk.Now())
			if t < r.Wake[p] || rf.Down(p, t) {
				return
			}
			if opt.MaxMessagesPerRun > 0 && len(r.Messages) >= opt.MaxMessagesPerRun {
				return
			}
			for _, o := range protos[p].Step(viewOf(r, p, t)) {
				if o.To < 0 || o.To >= n {
					simErr = fmt.Errorf("protocol: p%d sends to invalid destination %d", p, o.To)
					return
				}
				if opt.MaxMessagesPerRun > 0 && len(r.Messages) >= opt.MaxMessagesPerRun {
					break
				}
				fate := rf.SampleMessage()
				record(p, o.To, t, fate.Delay, fate.Dropped, o.Payload)
				if fate.DupDelay > 0 {
					if opt.MaxMessagesPerRun > 0 && len(r.Messages) >= opt.MaxMessagesPerRun {
						break
					}
					record(p, o.To, t, fate.DupDelay, false, o.Payload)
				}
			}
		}
	}
	for t := runs.Time(0); t <= horizon; t++ {
		for p := 0; p < n; p++ {
			if _, err := clk.At(int64(t), step(p)); err != nil {
				return nil, err
			}
		}
	}
	if err := clk.Advance(int64(horizon)); err != nil {
		return nil, err
	}
	if simErr != nil {
		return nil, simErr
	}
	return r, nil
}

// SampleSystem builds a run system by sampling: for every initial
// configuration it simulates samplesPerConfig runs under the fault plan,
// with globally unique run indices (configuration-major), then collapses
// byte-identical samples with runs.DedupeRuns. The result approximates the
// system of possible runs under the regime the plan encodes; with a
// degenerate plan (fixed delay, no faults) it collapses to exactly one run
// per configuration. Equal arguments produce a byte-identical system.
func SampleSystem(protos []Protocol, plan *faults.Plan, cfgs []Config, samplesPerConfig int, horizon runs.Time, opt Options) (*runs.System, error) {
	if opt.MaxRuns == 0 {
		opt.MaxRuns = 100000
	}
	if samplesPerConfig < 1 {
		return nil, fmt.Errorf("protocol: samplesPerConfig %d, want >= 1", samplesPerConfig)
	}
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("protocol: no configurations to sample")
	}
	if total := len(cfgs) * samplesPerConfig; total > opt.MaxRuns {
		return nil, fmt.Errorf("protocol: %d sampled runs exceed MaxRuns %d", total, opt.MaxRuns)
	}
	var all []*runs.Run
	for ci, cfg := range cfgs {
		for s := 0; s < samplesPerConfig; s++ {
			runIdx := ci*samplesPerConfig + s
			r, err := SimulateRun(protos, plan, cfg, runIdx, horizon, opt)
			if err != nil {
				return nil, err
			}
			if r.Name == "" {
				r.Name = "run"
			}
			r.Name = r.Name + "#" + strconv.Itoa(runIdx)
			all = append(all, r)
		}
	}
	return runs.NewSystem(runs.DedupeRuns(all)...)
}
