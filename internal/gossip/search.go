package gossip

import (
	"fmt"
	"strings"

	"repro/internal/kripke"
)

// Params configures an attainment search. The zero value searches nothing;
// withDefaults fills the documented defaults.
type Params struct {
	// Seed drives every sampled universe; equal seeds reproduce the table
	// byte for byte across repetitions and worker counts.
	Seed int64
	// N is the agent count (default 4).
	N int
	// MaxCalls bounds the sequence lengths searched (default 8).
	MaxCalls int
	// Depth is the E-tower depth of the table columns (default 2:
	// expert, E^1, E^2, C).
	Depth int
	// Cap is the exhaustive-enumeration world cap; lengths whose
	// admissible sequence count exceeds it are sampled (default 262144,
	// which keeps CO and LNS for 4 agents exhaustive end to end and ANY
	// exhaustive through length 5).
	Cap int
	// Sample is the sampled-universe size beyond the cap (default 2048).
	Sample int
	// Workers is the EvalBatch worker count (0 = the batch default).
	Workers int
	// Convs lists the conventions to search (default all three).
	Convs []Convention
}

func (p Params) withDefaults() Params {
	if p.N == 0 {
		p.N = 4
	}
	if p.MaxCalls == 0 {
		p.MaxCalls = 8
	}
	if p.Depth == 0 {
		p.Depth = 2
	}
	if p.Cap == 0 {
		p.Cap = 262144
	}
	if p.Sample == 0 {
		p.Sample = 2048
	}
	if p.Convs == nil {
		p.Convs = Conventions()
	}
	return p
}

// Attain is one table cell: the minimal call count at which a knowledge
// level was observed for a convention.
type Attain struct {
	// Calls is the minimal sequence length attaining the level, or -1.
	Calls int
	// Sampled marks attainment first observed on a sampled universe — an
	// optimistic lower bound rather than an exact minimum.
	Sampled bool
	// Witness is the rendering of the first witnessing sequence.
	Witness string
}

// Row is one convention's attainment row.
type Row struct {
	Conv Convention
	// MaxLen is the last length with a nonempty universe (conventions
	// like CO and LNS terminate: past some length nothing is admissible).
	MaxLen int
	// Levels holds the cells in tower order: allexpert, E^1..E^Depth, C.
	Levels []Attain
}

// Table is a full attainment search result.
type Table struct {
	P    Params
	Rows []Row
}

// Search runs the protocol search: per convention, walk the sequence
// lengths upward, build each length's universe (exhaustive under the cap,
// seeded sampling beyond it), batch-evaluate the verdict tower over the
// whole universe at once, and record the first length at which each level
// has any witness. Attainment of E^k at world w needs every sequence any
// agent chain of length k confuses with w to end all-expert, so one
// EvalBatch over the universe answers "is the level attainable at this
// length, and by which sequence" for every level simultaneously.
func Search(p Params) (*Table, error) {
	p = p.withDefaults()
	if p.N < 2 || p.N > MaxAgents {
		return nil, fmt.Errorf("gossip: %d agents (want 2..%d)", p.N, MaxAgents)
	}
	t := &Table{P: p}
	fs := Tower(p.Depth)
	for _, conv := range p.Convs {
		row := Row{Conv: conv, Levels: make([]Attain, p.Depth+2)}
		for i := range row.Levels {
			row.Levels[i].Calls = -1
		}
		for length := 1; length <= p.MaxCalls; length++ {
			open := false
			for _, lv := range row.Levels {
				if lv.Calls < 0 {
					open = true
				}
			}
			if !open {
				break
			}
			u := BuildUniverse(conv, p.N, length, p.Cap, p.Sample, p.Seed)
			if len(u.Seqs) == 0 {
				break
			}
			row.MaxLen = length
			m := u.Model()
			sets, err := m.M.EvalBatch(fs, kripke.BatchWorkers(p.Workers))
			if err != nil {
				return nil, err
			}
			for li := range row.Levels {
				if row.Levels[li].Calls >= 0 {
					continue
				}
				if w, ok := sets[li].NextSet(0); ok {
					row.Levels[li] = Attain{Calls: length, Sampled: u.Sampled, Witness: m.M.Name(w)}
				}
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// levelLabel names tower level i (0 = the fact, then E^k, then C).
func levelLabel(i, depth int) string {
	switch {
	case i == 0:
		return "expert"
	case i <= depth:
		return fmt.Sprintf("E^%d", i)
	default:
		return "C"
	}
}

func (a Attain) cell() string {
	if a.Calls < 0 {
		return "—"
	}
	s := fmt.Sprintf("%d", a.Calls)
	if a.Sampled {
		s += "*"
	}
	return s
}

// Render prints the attainment table, a witness block, and the legend —
// byte-identical for equal Params across repetitions and worker counts.
func (t *Table) Render() string {
	var b strings.Builder
	p := t.P
	fmt.Fprintf(&b, "gossip attainment: seed=%d agents=%d maxcalls=%d cap=%d sample=%d\n",
		p.Seed, p.N, p.MaxCalls, p.Cap, p.Sample)
	fmt.Fprintf(&b, "%-11s", "convention")
	for i := 0; i < p.Depth+2; i++ {
		fmt.Fprintf(&b, " %-7s", levelLabel(i, p.Depth))
	}
	fmt.Fprintf(&b, " maxlen\n")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%-11s", row.Conv.Key())
		for _, lv := range row.Levels {
			fmt.Fprintf(&b, " %-7s", lv.cell())
		}
		fmt.Fprintf(&b, " %d\n", row.MaxLen)
	}
	b.WriteString("witnesses:\n")
	for _, row := range t.Rows {
		for i, lv := range row.Levels {
			if lv.Calls < 0 {
				continue
			}
			fmt.Fprintf(&b, "  %-4s %s=%s via %s\n", row.Conv.Key(), levelLabel(i, p.Depth), lv.cell(), lv.Witness)
		}
	}
	b.WriteString("legend: n = minimal calls to the level at termination; * = sampled universe (optimistic); — = unattained within maxcalls\n")
	return b.String()
}
