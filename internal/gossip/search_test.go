package gossip

import (
	"strings"
	"testing"
)

// goldenTable pins the full seed-1 attainment table byte for byte. The CI
// smoke step greps individual rows of the same render and the determinism
// test below re-derives it at several worker counts, so any drift in
// sampling, evaluation order or rendering fails loudly here first.
//
// The exhaustive cells carry the family's separations: expert at 4 calls is
// the classic 2n-4 minimum for every convention; LNS reaches E^2 one call
// before CO; and both terminating conventions attain C at 6 calls — at a
// forced termination length every admissible world ends all-expert, so
// synchrony alone makes the fact common knowledge, while the non-terminating
// ANY convention shows no exhaustive attainment beyond expert (its starred
// cells are sampled, optimistic lower bounds).
const goldenTable = "gossip attainment: seed=1 agents=4 maxcalls=8 cap=262144 sample=2048\n" +
	"convention  expert  E^1     E^2     C       maxlen\n" +
	"any         4       6*      6*      6*      6\n" +
	"co          4       5       6       6       6\n" +
	"lns         4       5       5       6       6\n" +
	"witnesses:\n" +
	"  any  expert=4 via ab.cd.ac.bd\n" +
	"  any  E^1=6* via ba.ad.cd.bd.bc.ad\n" +
	"  any  E^2=6* via ba.cd.ac.ac.cb.bd\n" +
	"  any  C=6* via ad.bc.da.ba.cd.ac\n" +
	"  co   expert=4 via ab.cd.ac.bd\n" +
	"  co   E^1=5 via ab.cd.ac.ad.bc\n" +
	"  co   E^2=6 via ab.ac.ad.bc.bd.cd\n" +
	"  co   C=6 via ab.ac.ad.bc.bd.cd\n" +
	"  lns  expert=4 via ab.cd.ac.bd\n" +
	"  lns  E^1=5 via ab.cd.ac.bc.da\n" +
	"  lns  E^2=5 via ab.cd.ac.bc.db\n" +
	"  lns  C=6 via ab.ac.ad.bc.bd.cd\n" +
	"legend: n = minimal calls to the level at termination; * = sampled universe (optimistic); — = unattained within maxcalls\n"

func TestSearchGoldenTable(t *testing.T) {
	table, err := Search(Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := table.Render(); got != goldenTable {
		t.Fatalf("table drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, goldenTable)
	}
}

// TestSearchWorkerDeterminism re-derives the golden table across worker
// counts (serial, two workers, one per core) — the batch evaluator must be
// byte-identical regardless of scheduling.
func TestSearchWorkerDeterminism(t *testing.T) {
	for _, workers := range []int{1, 1, 2, -1} {
		table, err := Search(Params{Seed: 1, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got := table.Render(); got != goldenTable {
			t.Fatalf("workers=%d: table differs from golden:\n%s", workers, got)
		}
	}
}

// TestSearchSeparations asserts the family's qualitative claims directly on
// the cells, independent of rendering.
func TestSearchSeparations(t *testing.T) {
	table, err := Search(Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]Row{}
	for _, row := range table.Rows {
		rows[row.Conv.Key()] = row
	}
	for key, row := range rows {
		if got := row.Levels[0]; got.Calls != 4 || got.Sampled {
			t.Errorf("%s: expert attained at %d (sampled=%v), want the exact 2n-4 = 4", key, got.Calls, got.Sampled)
		}
	}
	// Terminating conventions attain common knowledge exhaustively at their
	// forced-termination length; ANY only ever shows sampled attainment.
	for _, key := range []string{"co", "lns"} {
		c := rows[key].Levels[3]
		if c.Calls != 6 || c.Sampled {
			t.Errorf("%s: C attained at %d (sampled=%v), want exact 6", key, c.Calls, c.Sampled)
		}
		if rows[key].MaxLen != 6 {
			t.Errorf("%s: maxlen %d, want 6", key, rows[key].MaxLen)
		}
	}
	for li, lv := range rows["any"].Levels[1:] {
		if lv.Calls >= 0 && !lv.Sampled {
			t.Errorf("any: level %d claims exhaustive attainment at %d calls", li+1, lv.Calls)
		}
	}
	if e2co, e2lns := rows["co"].Levels[2], rows["lns"].Levels[2]; e2lns.Calls >= e2co.Calls {
		t.Errorf("LNS E^2 at %d should precede CO E^2 at %d", e2lns.Calls, e2co.Calls)
	}
}

func TestSearchErrors(t *testing.T) {
	if _, err := Search(Params{Seed: 1, N: 1}); err == nil {
		t.Error("Search should reject 1 agent")
	}
	if _, err := Search(Params{Seed: 1, N: MaxAgents + 1}); err == nil {
		t.Error("Search should reject too many agents")
	}
}

// TestSearchUnattained pins the em-dash cell: capping the search below the
// first attainment length leaves every level beyond expert open.
func TestSearchUnattained(t *testing.T) {
	table, err := Search(Params{Seed: 1, MaxCalls: 4, Convs: []Convention{CO}})
	if err != nil {
		t.Fatal(err)
	}
	row := table.Rows[0]
	if row.Levels[0].Calls != 4 {
		t.Fatalf("expert at %d, want 4", row.Levels[0].Calls)
	}
	for li, lv := range row.Levels[1:] {
		if lv.Calls != -1 {
			t.Errorf("level %d attained at %d within 4 calls", li+1, lv.Calls)
		}
	}
	if !strings.Contains(table.Render(), "—") {
		t.Error("render of an unattained level should show the em dash")
	}
}
