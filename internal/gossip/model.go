package gossip

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/kripke"
	"repro/internal/logic"
)

// FamProp is the ground fact "agent i is familiar with j's secret at
// termination", rendered with agent letters: fam:ab.
func FamProp(i, j int) string {
	return "fam:" + string([]byte{'a' + byte(i), 'a' + byte(j)})
}

// ExpertProp is the ground fact "agent i is an expert at termination".
func ExpertProp(i int) string { return "expert:" + string([]byte{'a' + byte(i)}) }

// AllExpertProp is the ground fact "every agent is an expert at
// termination" — the formula all verdict towers are about.
const AllExpertProp = "allexpert"

// Model is the terminal epistemic model of a universe: one world per
// candidate sequence, secret-distribution valuation columns, and per-agent
// indistinguishability from call observability.
type Model struct {
	U *Universe
	M *kripke.Model
}

// Model builds the Kripke model of the universe in one columnar pass.
// Every sequence is replayed once: the replay writes the terminal
// familiarity columns and collects, per agent, the observation log its
// partition key is built from — (position, role, peer, exchanged secret
// set) for each call the agent took part in. Two sequences land in the
// same class of agent a exactly when a cannot tell them apart after
// running either to completion (synchronous perfect recall).
func (u *Universe) Model() *Model {
	if len(u.Seqs) == 0 {
		panic("gossip: cannot build a model over an empty universe")
	}
	n, w := u.N, len(u.Seqs)
	b := kripke.NewBuilder(w, n)

	fam := make([][]*bitset.Set, n)
	expert := make([]*bitset.Set, n)
	for i := 0; i < n; i++ {
		fam[i] = make([]*bitset.Set, n)
		for j := 0; j < n; j++ {
			fam[i][j] = b.Column(FamProp(i, j))
		}
		expert[i] = b.Column(ExpertProp(i))
	}
	all := b.Column(AllExpertProp)

	names := make([]string, w)
	keys := make([][]string, n)
	for a := 0; a < n; a++ {
		keys[a] = make([]string, w)
	}
	bufs := make([][]byte, n)
	st := NewState(n)
	for wi, seq := range u.Seqs {
		st.Reset()
		for a := range bufs {
			bufs[a] = bufs[a][:0]
		}
		for t, c := range seq {
			union := st.Apply(c)
			bufs[c.Caller] = appendObs(bufs[c.Caller], t, 0, c.Callee, union)
			bufs[c.Callee] = appendObs(bufs[c.Callee], t, 1, c.Caller, union)
		}
		allExpert := true
		for i := 0; i < n; i++ {
			keys[i][wi] = string(bufs[i])
			for j := 0; j < n; j++ {
				if st.Fam[i]&(1<<j) != 0 {
					fam[i][j].Add(wi)
				}
			}
			if st.Expert(i) {
				expert[i].Add(wi)
			} else {
				allExpert = false
			}
		}
		if allExpert {
			all.Add(wi)
		}
		names[wi] = seq.String()
	}
	b.Names(names)
	for a := 0; a < n; a++ {
		ks := keys[a]
		b.PartitionFromKeys(a, func(w int) string { return ks[w] })
	}
	return &Model{U: u, M: b.Build()}
}

// appendObs encodes one observed call into an agent's partition key:
// position, role (caller/callee), peer, and the exchanged secret union.
func appendObs(buf []byte, t, role int, peer uint8, union uint16) []byte {
	return append(buf, byte(t), byte(role), peer, byte(union), byte(union>>8))
}

// WorldOf returns the world index of a sequence in the model.
func (m *Model) WorldOf(seq Sequence) (int, bool) {
	return m.M.WorldByName(seq.String())
}

// Tower returns the verdict tower over AllExpertProp: the fact itself,
// E^1 through E^depth over all agents, and C — the batch every chain link
// and search step evaluates at once.
func Tower(depth int) []logic.Formula {
	if depth < 1 {
		panic(fmt.Sprintf("gossip: tower depth %d (want >= 1)", depth))
	}
	phi := logic.P(AllExpertProp)
	fs := make([]logic.Formula, 0, depth+2)
	fs = append(fs, phi)
	for k := 1; k <= depth; k++ {
		fs = append(fs, logic.EK(nil, k, phi))
	}
	return append(fs, logic.C(nil, phi))
}
