package gossip

import (
	"repro/internal/faults"
)

// Stream labels for the seeded samplers, in the faults.SubStream
// convention: every draw in a universe build comes off the stream
// identified by (seed, label, convention, length), so universes for
// different conventions or lengths never share state and replay
// byte-identically in any build order.
const (
	labelUniverse uint64 = 0x6055171
	labelDeviate  uint64 = 0x6055de7
)

// Universe is the world set of one gossip model: candidate call sequences
// of a fixed length under one convention, in deterministic order.
type Universe struct {
	N    int
	Conv Convention
	Len  int
	Seqs []Sequence
	// Sampled is true when the admissible sequence count exceeded the
	// enumeration cap and the universe was sampled instead. Sampled
	// universes under-populate indistinguishability classes, so knowledge
	// verdicts on them are optimistic: attainment counts read as earliest
	// observed, not exact minima.
	Sampled bool
}

func (s Sequence) key() string {
	b := make([]byte, 0, len(s)*2)
	for _, c := range s {
		b = append(b, c.Caller, c.Callee)
	}
	return string(b)
}

// Enumerate lists every admissible sequence of exactly the given length in
// lexicographic (caller-major) call order. It reports ok=false without a
// universe when the count exceeds cap — the signal to fall back to
// sampling. An empty universe with ok=true means the convention admits no
// sequence of that length (it has terminated earlier).
func Enumerate(conv Convention, n, length, cap int) (*Universe, bool) {
	alphabet := Calls(n)
	st := NewState(n)
	u := &Universe{N: n, Conv: conv, Len: length}
	cur := make(Sequence, 0, length)

	// Depth-first over the call alphabet; admissibility depends only on
	// the evolving (familiarity, used-pairs) state, which is saved and
	// restored around each branch.
	type frame struct {
		fam  []uint16
		used uint64
	}
	var rec func(depth int) bool
	rec = func(depth int) bool {
		if depth == length {
			if len(u.Seqs) == cap {
				return false
			}
			seq := make(Sequence, length)
			copy(seq, cur)
			u.Seqs = append(u.Seqs, seq)
			return true
		}
		saved := frame{fam: append([]uint16(nil), st.Fam...), used: st.used}
		for _, c := range alphabet {
			if !st.Admissible(conv, c) {
				continue
			}
			st.Apply(c)
			cur = append(cur, c)
			ok := rec(depth + 1)
			cur = cur[:len(cur)-1]
			copy(st.Fam, saved.fam)
			st.used = saved.used
			if !ok {
				return false
			}
		}
		return true
	}
	if !rec(0) {
		return nil, false
	}
	return u, true
}

// randomWalk draws one admissible sequence of the given length, reporting
// failure when the convention dead-ends first.
func randomWalk(conv Convention, n, length int, alphabet []Call, st *State, str *faults.Stream) (Sequence, bool) {
	st.Reset()
	seq := make(Sequence, 0, length)
	adm := make([]Call, 0, len(alphabet))
	for t := 0; t < length; t++ {
		adm = adm[:0]
		for _, c := range alphabet {
			if st.Admissible(conv, c) {
				adm = append(adm, c)
			}
		}
		if len(adm) == 0 {
			return nil, false
		}
		c := adm[str.Intn(len(adm))]
		st.Apply(c)
		seq = append(seq, c)
	}
	return seq, true
}

// confuse derives a sequence indistinguishable from base for agent a —
// same calls for a, at the same positions, with the same exchanged secret
// sets — while resampling the calls a took no part in. These are exactly
// the worlds a's knowledge quantifies over, so populating them keeps
// sampled-universe verdicts from collapsing into "every world is its own
// class, everyone knows everything".
func confuse(conv Convention, base Sequence, a int, alphabet []Call, st *State, str *faults.Stream) (Sequence, bool) {
	st.Reset()
	out := make(Sequence, 0, len(base))
	adm := make([]Call, 0, len(alphabet))
	obs := make([]uint16, 0, len(base))
	for _, c := range base {
		if int(c.Caller) == a || int(c.Callee) == a {
			// a's own call must replay verbatim and stay admissible in
			// the rewritten history.
			if !st.Admissible(conv, c) {
				return nil, false
			}
			obs = append(obs, st.Apply(c))
			out = append(out, c)
			continue
		}
		adm = adm[:0]
		for _, alt := range alphabet {
			if int(alt.Caller) == a || int(alt.Callee) == a {
				continue
			}
			if st.Admissible(conv, alt) {
				adm = append(adm, alt)
			}
		}
		if len(adm) == 0 {
			return nil, false
		}
		alt := adm[str.Intn(len(adm))]
		st.Apply(alt)
		out = append(out, alt)
	}
	// The rewrite may have changed what a's peers knew when a called them;
	// accept only if a's observations are bit-identical to the base run.
	st.Reset()
	i := 0
	for _, c := range base {
		if int(c.Caller) != a && int(c.Callee) != a {
			st.Apply(c)
			continue
		}
		if st.Apply(c) != obs[i] {
			return nil, false
		}
		i++
	}
	return out, true
}

// Sample draws a sampled universe of up to want distinct sequences: seeded
// random admissible walks, each augmented with confusers (see confuse) to
// depth two — a confuser of a confuser witnesses two hops of the
// reachability the E^2 and C verdicts quantify over, so sampled towers do
// not collapse into singleton classes. All draws come sequentially off
// str, so equal (seed, labels) reproduce the universe byte for byte.
func Sample(conv Convention, n, length, want int, str *faults.Stream) *Universe {
	const (
		confusersPerAgent = 2
		confuserDepth     = 2
	)
	alphabet := Calls(n)
	st := NewState(n)
	u := &Universe{N: n, Conv: conv, Len: length, Sampled: true}
	seen := make(map[string]bool, want)
	type item struct {
		seq   Sequence
		depth int
	}
	var queue []item
	add := func(s Sequence, depth int) {
		k := s.key()
		if seen[k] {
			return
		}
		seen[k] = true
		u.Seqs = append(u.Seqs, s)
		if depth < confuserDepth {
			queue = append(queue, item{s, depth})
		}
	}
	for attempts := 0; len(u.Seqs) < want && attempts < want*24; {
		if len(queue) == 0 {
			attempts++
			if w, ok := randomWalk(conv, n, length, alphabet, st, str); ok {
				add(w, 0)
			}
			continue
		}
		it := queue[0]
		queue = queue[1:]
		for a := 0; a < n && len(u.Seqs) < want; a++ {
			for k := 0; k < confusersPerAgent; k++ {
				attempts++
				if c, ok := confuse(conv, it.seq, a, alphabet, st, str); ok {
					add(c, it.depth+1)
				}
			}
		}
	}
	return u
}

// BuildUniverse enumerates the admissible sequences of the given length,
// falling back to seeded sampling when the count exceeds cap. The sampling
// stream is derived as SubStream(seed, labelUniverse, conv, length), so
// universes are order-independent across conventions and lengths.
func BuildUniverse(conv Convention, n, length, cap, sampleWant int, seed int64) *Universe {
	if u, ok := Enumerate(conv, n, length, cap); ok {
		return u
	}
	str := faults.SubStream(seed, labelUniverse, uint64(conv), uint64(length))
	return Sample(conv, n, length, sampleWant, str)
}

// SampleDeviations builds the universe the revelation chain runs on: the
// actual sequence (world 0) plus, for every position t, up to perLink
// sampled sequences that share the actual prefix up to t, deviate at t,
// and continue with an admissible random completion. Revealing call t then
// eliminates exactly the branch that deviated there — a linear decay over
// the chain's links, mirroring the remaining uncertainty of an observer
// who has verified the sequence up to t. The stream derives from
// (seed, labelDeviate, conv, len(actual)).
func SampleDeviations(conv Convention, n int, actual Sequence, perLink int, seed int64) *Universe {
	alphabet := Calls(n)
	st := NewState(n)
	u := &Universe{N: n, Conv: conv, Len: len(actual), Sampled: true}
	str := faults.SubStream(seed, labelDeviate, uint64(conv), uint64(len(actual)))
	seen := map[string]bool{actual.key(): true}
	u.Seqs = append(u.Seqs, actual)
	adm := make([]Call, 0, len(alphabet))
	for t := range actual {
		for made, attempts := 0, 0; made < perLink && attempts < perLink*8; attempts++ {
			st.Reset()
			for _, c := range actual[:t] {
				st.Apply(c)
			}
			adm = adm[:0]
			for _, c := range alphabet {
				if c != actual[t] && st.Admissible(conv, c) {
					adm = append(adm, c)
				}
			}
			if len(adm) == 0 {
				break
			}
			seq := make(Sequence, 0, len(actual))
			seq = append(seq, actual[:t]...)
			c := adm[str.Intn(len(adm))]
			st.Apply(c)
			seq = append(seq, c)
			ok := true
			for i := t + 1; i < len(actual); i++ {
				adm = adm[:0]
				for _, alt := range alphabet {
					if st.Admissible(conv, alt) {
						adm = append(adm, alt)
					}
				}
				if len(adm) == 0 {
					ok = false
					break
				}
				alt := adm[str.Intn(len(adm))]
				st.Apply(alt)
				seq = append(seq, alt)
			}
			if !ok || seen[seq.key()] {
				continue
			}
			seen[seq.key()] = true
			u.Seqs = append(u.Seqs, seq)
			made++
		}
	}
	return u
}
