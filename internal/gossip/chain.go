package gossip

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/kripke"
)

// ChainOptions selects how a revelation chain executes. The zero value is
// the from-scratch ablation baseline with a serial evaluator.
type ChainOptions struct {
	// Incremental threads Minimize block maps, joint views and
	// reachability seeds through every restriction (the PR 4/5 chain
	// machinery); false restricts with zero inheritance and re-minimizes
	// from the trivial partition — the ablation baseline. Verdicts and
	// block maps are byte-identical either way.
	Incremental bool
	// Workers is the EvalBatch worker count per link (0 = the batch
	// default, 1 = the serial loop, <0 = one per core).
	Workers int
	// Depth is the E-tower depth evaluated per link; 0 means n-1.
	Depth int
}

// ChainStep is one link of a revelation chain: the verdict tower after
// publicly revealing one more call of the actual sequence.
type ChainStep struct {
	// Link counts revealed calls, starting at 1.
	Link int
	// Call is the revealed call.
	Call Call
	// Worlds is the surviving world count after the revelation.
	Worlds int
	// Blocks is the size of the minimized (bisimulation) quotient.
	Blocks int
	// EDepth is the consecutive prefix of true E^k(allexpert) levels at
	// the actual world, up to the tower depth.
	EDepth int
	// Common reports C(allexpert) at the actual world.
	Common bool
}

// ChainResult carries the per-link verdicts of a revelation chain plus the
// Minimize block maps threaded through it (index 0 is the unrestricted
// model's map) — the parity surface the incremental-vs-scratch property
// test pins byte for byte.
type ChainResult struct {
	Steps     []ChainStep
	BlockMaps [][]int
}

// RevealChain replays the actual sequence as a public announcement chain
// on the model: link t reveals "the t-th call was actual[t]", restricting
// the universe to the sequences that agree there, and batch-evaluates the
// verdict tower at the actual world. The gossip channel itself is private
// — no prefix of calls ever creates common knowledge in-model — so the
// chain shows exactly how much of the sequence must become public before
// each knowledge level arrives; once every call is revealed the model is a
// single world and C holds trivially.
func (m *Model) RevealChain(actual Sequence, opts ChainOptions) (*ChainResult, error) {
	if len(actual) != m.U.Len {
		return nil, fmt.Errorf("gossip: revealing a %d-call sequence on a length-%d universe", len(actual), m.U.Len)
	}
	marked, ok := m.WorldOf(actual)
	if !ok {
		return nil, fmt.Errorf("gossip: sequence %s is not a world of the universe", actual)
	}
	depth := opts.Depth
	if depth == 0 {
		depth = m.U.N - 1
	}
	fs := Tower(depth)

	// alive maps current-model worlds back to universe sequence indices so
	// keep sets can be computed from the sequences directly.
	alive := make([]int, len(m.U.Seqs))
	for i := range alive {
		alive[i] = i
	}
	cur := m.M
	_, blk := cur.Minimize()
	res := &ChainResult{BlockMaps: [][]int{append([]int(nil), blk...)}}
	for t, c := range actual {
		keep := bitset.New(cur.NumWorlds())
		next := make([]int, 0, len(alive))
		newMarked := -1
		for i, ui := range alive {
			if m.U.Seqs[ui][t] == c {
				if i == marked {
					newMarked = len(next)
				}
				keep.Add(i)
				next = append(next, ui)
			}
		}
		if newMarked < 0 {
			return nil, fmt.Errorf("gossip: revelation %d eliminated the actual world", t+1)
		}
		if opts.Incremental {
			cur = cur.RestrictWithQuotient(keep, blk)
		} else {
			cur = cur.RestrictOpts(keep, kripke.RestrictOptions{})
		}
		alive, marked = next, newMarked
		q, nblk := cur.Minimize()
		blk = nblk
		sets, err := cur.EvalBatch(fs, kripke.BatchWorkers(opts.Workers))
		if err != nil {
			return nil, err
		}
		step := ChainStep{Link: t + 1, Call: c, Worlds: cur.NumWorlds(), Blocks: q.NumWorlds()}
		for k := 1; k <= depth; k++ {
			if !sets[k].Contains(marked) {
				break
			}
			step.EDepth = k
		}
		step.Common = sets[depth+1].Contains(marked)
		res.Steps = append(res.Steps, step)
		res.BlockMaps = append(res.BlockMaps, append([]int(nil), blk...))
	}
	return res, nil
}
