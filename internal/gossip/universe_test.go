package gossip

import (
	"testing"

	"repro/internal/faults"
)

// replayAdmissible verifies a sequence is admissible under the convention
// by replaying it from the initial situation.
func replayAdmissible(t *testing.T, conv Convention, n int, seq Sequence) {
	t.Helper()
	st := NewState(n)
	for i, c := range seq {
		if !st.Admissible(conv, c) {
			t.Fatalf("%s: call %d (%s) of %s is inadmissible", conv.Key(), i, c, seq)
		}
		st.Apply(c)
	}
}

// TestEnumerateMatchesBruteForce cross-checks the DFS against a direct
// filter of every call tuple for a small instance.
func TestEnumerateMatchesBruteForce(t *testing.T) {
	const n, length = 3, 2
	alphabet := Calls(n)
	for _, conv := range Conventions() {
		want := 0
		st := NewState(n)
		for _, c1 := range alphabet {
			for _, c2 := range alphabet {
				st.Reset()
				if !st.Admissible(conv, c1) {
					continue
				}
				st.Apply(c1)
				if st.Admissible(conv, c2) {
					want++
				}
			}
		}
		u, ok := Enumerate(conv, n, length, 1<<20)
		if !ok {
			t.Fatalf("%s: enumeration aborted", conv.Key())
		}
		if len(u.Seqs) != want {
			t.Errorf("%s: enumerated %d sequences, brute force says %d", conv.Key(), len(u.Seqs), want)
		}
		for _, seq := range u.Seqs {
			replayAdmissible(t, conv, n, seq)
		}
	}
}

func TestEnumerateCapAborts(t *testing.T) {
	if u, ok := Enumerate(Any, 4, 3, 10); ok || u != nil {
		t.Fatal("enumeration past the cap should abort")
	}
}

// TestEnumerateTerminated: three agents have three unordered pairs, so CO
// admits no fourth call — the universe is empty but the enumeration is
// exact.
func TestEnumerateTerminated(t *testing.T) {
	u, ok := Enumerate(CO, 3, 4, 1<<20)
	if !ok || len(u.Seqs) != 0 || u.Sampled {
		t.Fatalf("CO length 4 for 3 agents: ok=%v seqs=%d sampled=%v", ok, len(u.Seqs), u.Sampled)
	}
	// LNS sequences are CO sequences (a call makes both parties familiar,
	// so no pair can ever call again), and 4 agents have only 6 pairs —
	// length 7 is empty.
	u, ok = Enumerate(LNS, 4, 7, 1<<20)
	if !ok || len(u.Seqs) != 0 {
		t.Fatalf("LNS length 7 for 4 agents: ok=%v seqs=%d", ok, len(u.Seqs))
	}
}

func TestSampleDeterministicAndAdmissible(t *testing.T) {
	const n, length, want = 5, 6, 200
	for _, conv := range Conventions() {
		a := Sample(conv, n, length, want, faults.SubStream(7, labelUniverse, uint64(conv), uint64(length)))
		b := Sample(conv, n, length, want, faults.SubStream(7, labelUniverse, uint64(conv), uint64(length)))
		if len(a.Seqs) != len(b.Seqs) {
			t.Fatalf("%s: equal seeds drew %d vs %d sequences", conv.Key(), len(a.Seqs), len(b.Seqs))
		}
		seen := map[string]bool{}
		for i, seq := range a.Seqs {
			if seq.String() != b.Seqs[i].String() {
				t.Fatalf("%s: sequence %d differs across equal seeds", conv.Key(), i)
			}
			if seen[seq.String()] {
				t.Fatalf("%s: duplicate sampled sequence %s", conv.Key(), seq)
			}
			seen[seq.String()] = true
			replayAdmissible(t, conv, n, seq)
		}
		if !a.Sampled || len(a.Seqs) == 0 {
			t.Fatalf("%s: sampled universe has %d seqs, Sampled=%v", conv.Key(), len(a.Seqs), a.Sampled)
		}
	}
}

// TestConfusePreservesObservations: a confuser must replay the base
// sequence exactly from the confused agent's point of view — same calls at
// the same positions with the same exchanged secret sets.
func TestConfusePreservesObservations(t *testing.T) {
	const n, length, a = 5, 6, 2
	alphabet := Calls(n)
	st := NewState(n)
	str := faults.SubStream(11, labelUniverse, 0, uint64(length))
	base, ok := randomWalk(Any, n, length, alphabet, st, str)
	if !ok {
		t.Fatal("random walk dead-ended under ANY")
	}
	var confusers []Sequence
	for tries := 0; tries < 64; tries++ {
		if c, ok := confuse(Any, base, a, alphabet, st, str); ok {
			confusers = append(confusers, c)
		}
	}
	if len(confusers) == 0 {
		t.Fatal("no confuser accepted in 64 tries")
	}
	obs := func(seq Sequence) []uint16 {
		s := NewState(n)
		var out []uint16
		for t, c := range seq {
			u := s.Apply(c)
			if int(c.Caller) == a || int(c.Callee) == a {
				out = append(out, uint16(t), u)
			}
		}
		return out
	}
	want := obs(base)
	for _, c := range confusers {
		replayAdmissible(t, Any, n, c)
		got := obs(c)
		if len(got) != len(want) {
			t.Fatalf("confuser %s changes agent %c's call count", c, 'a'+byte(a))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("confuser %s changes agent %c's observation log", c, 'a'+byte(a))
			}
		}
	}
}

func TestBuildUniverseFallsBack(t *testing.T) {
	exact := BuildUniverse(CO, 4, 4, 1<<20, 64, 1)
	if exact.Sampled {
		t.Fatal("CO length 4 under a huge cap should be exhaustive")
	}
	sampled := BuildUniverse(CO, 4, 4, 8, 64, 1)
	if !sampled.Sampled || len(sampled.Seqs) == 0 {
		t.Fatalf("cap 8 should force sampling, got %d seqs sampled=%v", len(sampled.Seqs), sampled.Sampled)
	}
	for _, seq := range sampled.Seqs {
		replayAdmissible(t, CO, 4, seq)
	}
}

func TestSampleDeviations(t *testing.T) {
	actual, err := ParseSequence("ab.cd.ac.bd", 4)
	if err != nil {
		t.Fatal(err)
	}
	u := SampleDeviations(CO, 4, actual, 6, 1)
	again := SampleDeviations(CO, 4, actual, 6, 1)
	if len(u.Seqs) != len(again.Seqs) {
		t.Fatalf("equal seeds drew %d vs %d deviations", len(u.Seqs), len(again.Seqs))
	}
	if u.Seqs[0].String() != actual.String() {
		t.Fatalf("world 0 is %s, want the actual sequence", u.Seqs[0])
	}
	if len(u.Seqs) < 2 {
		t.Fatal("no deviations sampled")
	}
	seen := map[string]bool{}
	for i, seq := range u.Seqs {
		if seq.String() != again.Seqs[i].String() {
			t.Fatalf("deviation %d differs across equal seeds", i)
		}
		if seen[seq.String()] {
			t.Fatalf("duplicate deviation %s", seq)
		}
		seen[seq.String()] = true
		replayAdmissible(t, CO, 4, seq)
		if len(seq) != len(actual) {
			t.Fatalf("deviation %s has length %d, want %d", seq, len(seq), len(actual))
		}
	}
	// Every non-actual world shares a (possibly empty) prefix with the
	// actual sequence and deviates at its first divergence by construction;
	// check divergence exists.
	for _, seq := range u.Seqs[1:] {
		same := true
		for i := range seq {
			if seq[i] != actual[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("deviation %s never deviates", seq)
		}
	}
}
