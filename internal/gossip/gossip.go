// Package gossip models the telephone-call protocols of Apt & Wojtczak
// ("Common Knowledge in a Logic of Gossips", cited in PAPERS.md) as a
// workload family for the announcement-chain machinery: n agents each hold
// one secret, a call between two agents merges their secret sets, and the
// epistemic question is which knowledge level of "everyone is an expert" —
// E, E^2, …, C over all agents — a call sequence attains at termination.
//
// The encoding is columnar throughout. A universe of candidate call
// sequences (exhaustive for small instances, seeded sampling off
// faults.SubStream beyond a cap) becomes one Kripke model: worlds are
// complete sequences of a fixed length, secret-distribution facts are
// valuation columns written from a single replay pass, and per-agent
// indistinguishability comes from call observability — two sequences are
// equivalent for agent a exactly when a took part in the same calls, at the
// same positions, with the same peers and the same exchanged secret sets
// (synchronous perfect recall). Executing a call sequence then turns into
// an incremental announcement chain: revealing the calls one link at a time
// restricts the model, with Minimize block maps and reachability seeds
// threaded link to link through kripke.RestrictWithQuotient, and the
// verdict tower batch-evaluated per link via EvalBatch.
//
// The private channel itself never creates common knowledge — the paper's
// central obstruction — while the revelation chain shows C arriving only as
// the sequence becomes public; the attainment search reports, per call
// convention (ANY, CO, LNS), the minimal call count reaching each level.
package gossip

import (
	"fmt"
	"strings"
)

// MaxAgents bounds the agent count: secret sets are uint16 masks and
// agents render as the letters 'a'..'l'.
const MaxAgents = 12

// Convention is a call admissibility rule from Apt & Wojtczak: which call
// the scheduler may place next, given the history so far.
type Convention int

const (
	// Any places arbitrary calls (the caller may call anyone, repeatedly).
	Any Convention = iota
	// CO ("call once") forbids a second call between the same unordered
	// pair of agents.
	CO
	// LNS ("learn new secrets") lets a call b only when a is not yet
	// familiar with b's secret.
	LNS
)

// Conventions lists every convention in table order.
func Conventions() []Convention { return []Convention{Any, CO, LNS} }

// Key returns the convention's lower-case table key.
func (v Convention) Key() string {
	switch v {
	case Any:
		return "any"
	case CO:
		return "co"
	case LNS:
		return "lns"
	}
	return fmt.Sprintf("conv%d", int(v))
}

// ParseConvention maps a table key back to its convention.
func ParseConvention(key string) (Convention, error) {
	for _, v := range Conventions() {
		if v.Key() == key {
			return v, nil
		}
	}
	return 0, fmt.Errorf("gossip: unknown convention %q (want any, co or lns)", key)
}

// Call is one directed telephone call: Caller dials Callee and the two
// exchange every secret either knows.
type Call struct {
	Caller, Callee uint8
}

// String renders the call as two agent letters, caller first: "ab" means
// a calls b.
func (c Call) String() string {
	return string([]byte{'a' + c.Caller, 'a' + c.Callee})
}

// Sequence is a complete call sequence, executed left to right.
type Sequence []Call

// String renders the sequence as dot-joined calls: "ab.cd.ac.bd".
func (s Sequence) String() string {
	var b strings.Builder
	b.Grow(len(s) * 3)
	for i, c := range s {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(c.String())
	}
	return b.String()
}

// ParseSequence parses the String rendering ("ab.cd.ac.bd") for n agents.
func ParseSequence(s string, n int) (Sequence, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ".")
	seq := make(Sequence, 0, len(parts))
	for _, p := range parts {
		if len(p) != 2 {
			return nil, fmt.Errorf("gossip: call %q is not two agent letters", p)
		}
		caller, callee := int(p[0]-'a'), int(p[1]-'a')
		if caller < 0 || caller >= n || callee < 0 || callee >= n {
			return nil, fmt.Errorf("gossip: call %q names an agent outside a-%c", p, 'a'+byte(n-1))
		}
		if caller == callee {
			return nil, fmt.Errorf("gossip: call %q has an agent dialing itself", p)
		}
		seq = append(seq, Call{uint8(caller), uint8(callee)})
	}
	return seq, nil
}

// State is a gossip situation mid-sequence: which secrets each agent is
// familiar with, plus the used-pair set CO admissibility consults.
type State struct {
	// Fam[i] has bit j set when agent i is familiar with j's secret.
	Fam []uint16
	// used has the bit for unordered pair {i,j} set once they have called.
	used uint64
	n    int
}

// NewState returns the initial situation: every agent knows exactly its
// own secret and no pair has called.
func NewState(n int) *State {
	if n < 2 || n > MaxAgents {
		panic(fmt.Sprintf("gossip: %d agents (want 2..%d)", n, MaxAgents))
	}
	s := &State{Fam: make([]uint16, n), n: n}
	for i := range s.Fam {
		s.Fam[i] = 1 << i
	}
	return s
}

// Reset restores the initial situation in place.
func (s *State) Reset() {
	for i := range s.Fam {
		s.Fam[i] = 1 << i
	}
	s.used = 0
}

func pairBit(c Call) uint64 {
	i, j := int(c.Caller), int(c.Callee)
	if i > j {
		i, j = j, i
	}
	return 1 << (i*MaxAgents + j)
}

// Admissible reports whether the convention lets the scheduler place c in
// the current situation.
func (s *State) Admissible(v Convention, c Call) bool {
	if c.Caller == c.Callee || int(c.Caller) >= s.n || int(c.Callee) >= s.n {
		return false
	}
	switch v {
	case CO:
		return s.used&pairBit(c) == 0
	case LNS:
		return s.Fam[c.Caller]&(1<<c.Callee) == 0
	}
	return true
}

// Apply executes the call: both participants end up familiar with the
// union of their secret sets. It returns that union — exactly what each
// participant observes about the other during the call.
func (s *State) Apply(c Call) uint16 {
	u := s.Fam[c.Caller] | s.Fam[c.Callee]
	s.Fam[c.Caller] = u
	s.Fam[c.Callee] = u
	s.used |= pairBit(c)
	return u
}

// Expert reports whether agent i is familiar with every secret.
func (s *State) Expert(i int) bool { return s.Fam[i] == uint16(1<<s.n)-1 }

// AllExpert reports whether every agent is an expert.
func (s *State) AllExpert() bool {
	for i := 0; i < s.n; i++ {
		if !s.Expert(i) {
			return false
		}
	}
	return true
}

// Calls enumerates the full directed-call alphabet for n agents in
// deterministic (caller-major) order.
func Calls(n int) []Call {
	out := make([]Call, 0, n*(n-1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				out = append(out, Call{uint8(i), uint8(j)})
			}
		}
	}
	return out
}
