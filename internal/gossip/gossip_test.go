package gossip

import (
	"strings"
	"testing"
)

func TestCallsAlphabet(t *testing.T) {
	calls := Calls(3)
	if len(calls) != 6 {
		t.Fatalf("Calls(3) has %d calls, want 6", len(calls))
	}
	var keys []string
	for _, c := range calls {
		keys = append(keys, c.String())
	}
	if got := strings.Join(keys, " "); got != "ab ac ba bc ca cb" {
		t.Fatalf("Calls(3) = %q", got)
	}
}

func TestSequenceRoundTrip(t *testing.T) {
	const s = "ab.cd.ac.bd"
	seq, err := ParseSequence(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := seq.String(); got != s {
		t.Fatalf("round trip %q -> %q", s, got)
	}
	if seq, err := ParseSequence("", 4); err != nil || seq != nil {
		t.Fatalf("empty sequence parsed to (%v, %v)", seq, err)
	}
}

func TestParseSequenceErrors(t *testing.T) {
	for _, bad := range []string{"abc", "a", "ae", "ea", "aa", "ab..cd", "ab.c"} {
		if _, err := ParseSequence(bad, 4); err == nil {
			t.Errorf("ParseSequence(%q, 4) should fail", bad)
		}
	}
}

// TestClassicFourAgentExpert replays the textbook 2n-4 sequence for four
// agents: after ab.cd.ac.bd everyone is an expert.
func TestClassicFourAgentExpert(t *testing.T) {
	st := NewState(4)
	seq, err := ParseSequence("ab.cd.ac.bd", 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.AllExpert() {
		t.Fatal("fresh state should not be all-expert")
	}
	if got := st.Apply(seq[0]); got != 0b0011 {
		t.Fatalf("ab exchanged %04b, want 0011", got)
	}
	for _, c := range seq[1:] {
		st.Apply(c)
	}
	for i := 0; i < 4; i++ {
		if !st.Expert(i) {
			t.Errorf("agent %c is not an expert after %s", 'a'+byte(i), seq)
		}
	}
	if !st.AllExpert() {
		t.Error("AllExpert should hold")
	}
	st.Reset()
	if st.AllExpert() || st.Fam[2] != 1<<2 {
		t.Error("Reset did not restore the initial situation")
	}
}

func TestAdmissible(t *testing.T) {
	st := NewState(3)
	ab := Call{0, 1}
	st.Apply(ab)
	if st.Admissible(CO, ab) || st.Admissible(CO, Call{1, 0}) {
		t.Error("CO should forbid re-calling a used pair in either direction")
	}
	if !st.Admissible(CO, Call{0, 2}) {
		t.Error("CO should allow a fresh pair")
	}
	if st.Admissible(LNS, ab) || st.Admissible(LNS, Call{1, 0}) {
		t.Error("LNS should forbid calling an agent whose secret the caller knows")
	}
	if !st.Admissible(LNS, Call{2, 0}) {
		t.Error("LNS should allow calling with an unfamiliar secret")
	}
	if !st.Admissible(Any, ab) {
		t.Error("ANY should allow repeats")
	}
	for _, c := range []Call{{0, 0}, {0, 3}, {3, 0}} {
		if st.Admissible(Any, c) {
			t.Errorf("call %v should be inadmissible for 3 agents", c)
		}
	}
}

func TestConventionKeys(t *testing.T) {
	for _, v := range Conventions() {
		got, err := ParseConvention(v.Key())
		if err != nil || got != v {
			t.Errorf("ParseConvention(%q) = (%v, %v), want %v", v.Key(), got, err, v)
		}
	}
	if _, err := ParseConvention("bogus"); err == nil {
		t.Error("ParseConvention should reject unknown keys")
	}
	if Convention(9).Key() != "conv9" {
		t.Error("out-of-range convention key")
	}
}

func TestNewStatePanics(t *testing.T) {
	for _, n := range []int{1, MaxAgents + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewState(%d) should panic", n)
				}
			}()
			NewState(n)
		}()
	}
}

func TestProps(t *testing.T) {
	if got := FamProp(0, 2); got != "fam:ac" {
		t.Errorf("FamProp(0,2) = %q", got)
	}
	if got := ExpertProp(3); got != "expert:d" {
		t.Errorf("ExpertProp(3) = %q", got)
	}
}
