package gossip

import (
	"reflect"
	"testing"
)

func chainFixture(t *testing.T, conv Convention, seed int64) (*Model, Sequence) {
	t.Helper()
	actual, err := ParseSequence("ab.cd.ac.bd", 4)
	if err != nil {
		t.Fatal(err)
	}
	u := SampleDeviations(conv, 4, actual, 8, seed)
	if len(u.Seqs) < 8 {
		t.Fatalf("deviation universe has only %d worlds", len(u.Seqs))
	}
	return u.Model(), actual
}

// TestRevealChainParity pins the tentpole property: the incremental
// restriction path (threaded quotient block maps and reachability seeds)
// and the from-scratch path produce byte-identical chains — every per-link
// verdict and every Minimize block map — across seeds and conventions.
func TestRevealChainParity(t *testing.T) {
	for _, conv := range Conventions() {
		for seed := int64(1); seed <= 3; seed++ {
			m, actual := chainFixture(t, conv, seed)
			inc, err := m.RevealChain(actual, ChainOptions{Incremental: true})
			if err != nil {
				t.Fatal(err)
			}
			scr, err := m.RevealChain(actual, ChainOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(inc.Steps, scr.Steps) {
				t.Fatalf("%s seed %d: incremental and scratch verdicts differ:\ninc: %+v\nscr: %+v",
					conv.Key(), seed, inc.Steps, scr.Steps)
			}
			if !reflect.DeepEqual(inc.BlockMaps, scr.BlockMaps) {
				t.Fatalf("%s seed %d: incremental and scratch block maps differ", conv.Key(), seed)
			}
		}
	}
}

// TestRevealChainWorkerDeterminism pins the chain result across worker
// counts (serial, two workers, one per core).
func TestRevealChainWorkerDeterminism(t *testing.T) {
	m, actual := chainFixture(t, LNS, 1)
	base, err := m.RevealChain(actual, ChainOptions{Incremental: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, -1} {
		got, err := m.RevealChain(actual, ChainOptions{Incremental: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d: chain result differs", workers)
		}
	}
}

// TestRevealChainConverges: once every call is public the model is the
// actual world alone and the tower holds trivially — and no earlier link
// may claim common knowledge, because a deviation universe always carries
// uncertainty until its last divergence is eliminated.
func TestRevealChainConverges(t *testing.T) {
	m, actual := chainFixture(t, CO, 1)
	res, err := m.RevealChain(actual, ChainOptions{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != len(actual) {
		t.Fatalf("chain has %d links, want %d", len(res.Steps), len(actual))
	}
	if len(res.BlockMaps) != len(actual)+1 {
		t.Fatalf("chain has %d block maps, want %d", len(res.BlockMaps), len(actual)+1)
	}
	last := res.Steps[len(res.Steps)-1]
	if last.Worlds != 1 || last.Blocks != 1 || !last.Common {
		t.Fatalf("final link should be a single common-knowledge world, got %+v", last)
	}
	if last.EDepth != m.U.N-1 {
		t.Fatalf("final link E-depth %d, want the full tower %d", last.EDepth, m.U.N-1)
	}
	prev := len(m.U.Seqs)
	for _, st := range res.Steps {
		if st.Worlds > prev {
			t.Fatalf("link %d grew the model: %d -> %d worlds", st.Link, prev, st.Worlds)
		}
		prev = st.Worlds
	}
}

func TestRevealChainErrors(t *testing.T) {
	actual, err := ParseSequence("ab.cd.ac.bd", 4)
	if err != nil {
		t.Fatal(err)
	}
	other, err := ParseSequence("ba.dc.ca.db", 4)
	if err != nil {
		t.Fatal(err)
	}
	// A two-world universe built by hand, so membership is exact.
	u := &Universe{N: 4, Conv: CO, Len: 4, Seqs: []Sequence{actual, other}}
	m := u.Model()
	if _, err := m.RevealChain(actual[:2], ChainOptions{}); err == nil {
		t.Error("revealing a short sequence should fail")
	}
	missing, err := ParseSequence("ad.bc.ab.cd", 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RevealChain(missing, ChainOptions{}); err == nil {
		t.Error("revealing a sequence outside the universe should fail")
	}
}

func TestTowerPanicsAndModelPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Tower(0) should panic")
			}
		}()
		Tower(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty-universe Model should panic")
			}
		}()
		(&Universe{N: 3}).Model()
	}()
}
