package repro_test

// Regression: the parallel batch-evaluation engine must return verdicts
// byte-identical to serial Eval on the systems of the existing experiments
// — the R2-D2 delivery chain, the commit window, the coordinated attack,
// the muddy children — with the worker pool forced wide and the lazy
// tables cold, and the muddy simulation must be invariant under the
// per-round fan-out.

import (
	"testing"

	"repro"
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/kripke"
	"repro/internal/logic"
	"repro/internal/muddy"
	"repro/internal/protocol"
	"repro/internal/runs"
)

// checkBatchMatchesSerial evaluates the batch serially on one model and
// with a forced-wide EvalBatch on a freshly built twin (cold caches), and
// requires byte-identical denotations.
func checkBatchMatchesSerial(t *testing.T, name string, serial, cold *repro.Model, batch []logic.Formula) {
	t.Helper()
	want := make([]string, len(batch))
	for i, f := range batch {
		s, err := serial.Eval(f)
		if err != nil {
			t.Fatalf("%s: serial eval of %s: %v", name, f, err)
		}
		want[i] = s.String()
	}
	got, err := cold.EvalBatch(batch, kripke.BatchWorkers(8))
	if err != nil {
		t.Fatalf("%s: EvalBatch: %v", name, err)
	}
	for i := range batch {
		if got[i].String() != want[i] {
			t.Errorf("%s: EvalBatch changed the verdict of %s", name, batch[i])
		}
	}
}

func TestEvalBatchMatchesExperiments(t *testing.T) {
	// E7/ablation system: the R2-D2 message chain of Section 8.
	buildR2D2 := func() *repro.Model {
		sys := core.R2D2Chain(6, 9)
		return sys.Model(repro.CompleteHistoryView, repro.Interpretation{
			"sent": repro.StablyTrue(repro.SentBy("m")),
		}).Model
	}
	checkBatchMatchesSerial(t, "r2d2", buildR2D2(), buildR2D2(), epistemicBatch("sent"))

	// E12/commit-window system of Section 13.
	buildCommit := func() *repro.Model {
		csys, interp, err := repro.CommitSystem(6)
		if err != nil {
			t.Fatal(err)
		}
		return csys.Model(repro.CompleteHistoryView, interp).Model
	}
	cm := buildCommit()
	var cprop string
	for _, f := range cm.Facts() {
		cprop = f
		break
	}
	checkBatchMatchesSerial(t, "commit", cm, buildCommit(), epistemicBatch(cprop))

	// E4/E13 coordinated-attack system.
	buildAttack := func() *repro.Model {
		as, err := attack.Build(4, 10)
		if err != nil {
			t.Fatal(err)
		}
		never := func(protocol.LocalView) bool { return false }
		return as.Sys.Model(runs.CompleteHistoryView, as.Interp(never, never)).Model
	}
	checkBatchMatchesSerial(t, "attack", buildAttack(), buildAttack(), epistemicBatch(attack.IntentProp))

	// E1 muddy children (a plain Kripke model), with the per-child round
	// formulas as the batch — the exact workload muddy.Round fans out.
	buildMuddy := func() *repro.Model {
		pz, err := muddy.New(8, []int{0, 1, 2})
		if err != nil {
			t.Fatal(err)
		}
		return pz.Model()
	}
	var roundBatch []logic.Formula
	for i := 0; i < 8; i++ {
		mi := logic.P(muddy.MuddyProp(i))
		roundBatch = append(roundBatch,
			logic.Disj(logic.K(logic.Agent(i), mi), logic.K(logic.Agent(i), logic.Neg(mi))))
	}
	roundBatch = append(roundBatch, epistemicBatch(muddy.MuddyProp(0))...)
	checkBatchMatchesSerial(t, "muddy", buildMuddy(), buildMuddy(), roundBatch)
}

// TestSimulateParallelMatchesSerial pins the muddy simulation against the
// fan-out: forced-wide per-round batches must reproduce the serial rounds
// answer for answer, including the tracked common-knowledge verdicts.
func TestSimulateParallelMatchesSerial(t *testing.T) {
	for _, k := range []int{1, 3} {
		muddySet := make([]int, k)
		for i := range muddySet {
			muddySet[i] = i
		}
		serial, err := muddy.SimulateOpts(9, muddySet, muddy.PublicAnnouncement, 6,
			muddy.SimOptions{Incremental: true, TrackCommon: true, Parallel: 1})
		if err != nil {
			t.Fatal(err)
		}
		wide, err := muddy.SimulateOpts(9, muddySet, muddy.PublicAnnouncement, 6,
			muddy.SimOptions{Incremental: true, TrackCommon: true, Parallel: 8})
		if err != nil {
			t.Fatal(err)
		}
		if serial.FirstYesRound != wide.FirstYesRound || serial.YesAreMuddy != wide.YesAreMuddy {
			t.Fatalf("k=%d: parallel simulation diverged: serial round %d, parallel round %d",
				k, serial.FirstYesRound, wide.FirstYesRound)
		}
		if len(serial.Rounds) != len(wide.Rounds) {
			t.Fatalf("k=%d: round counts diverged: %d vs %d", k, len(serial.Rounds), len(wide.Rounds))
		}
		for r := range serial.Rounds {
			for i := range serial.Rounds[r].Yes {
				if serial.Rounds[r].Yes[i] != wide.Rounds[r].Yes[i] {
					t.Fatalf("k=%d round %d: child %d answered differently under the fan-out", k, r+1, i)
				}
			}
			if serial.CommonM[r] != wide.CommonM[r] {
				t.Fatalf("k=%d round %d: C m verdict differs under the fan-out", k, r+1)
			}
		}
	}
}
